package mln

import (
	"math"
	"math/rand"
	"slices"
	"sync"
	"testing"

	"repro/internal/canopy"
	"repro/internal/core"
	"repro/internal/datagen"
)

// memoEnv holds two matchers over the same grounding: memo with the
// verdict memo on (the default), ref with it off — the naive reference
// every differential check below compares against.
type memoEnv struct {
	cover *core.Cover
	memo  *Matcher
	ref   *Matcher
}

func memoGround(t testing.TB, seed int64) memoEnv {
	t.Helper()
	d := datagen.MustGenerate(datagen.HEPTHLike(0.08, seed))
	cover := canopy.BuildCover(d, canopy.DefaultConfig())
	sp := canopy.CandidatePairs(d, cover)
	cands := make([]Candidate, len(sp))
	for i, s := range sp {
		cands[i] = Candidate{Pair: s.Pair, Level: s.Level}
	}
	memo, err := New(d, cands, PaperWeights())
	if err != nil {
		t.Fatal(err)
	}
	ref, err := New(d, cands, PaperWeights())
	if err != nil {
		t.Fatal(err)
	}
	ref.SetMemoization(false)
	memo.PrepareCover(cover)
	ref.PrepareCover(cover)
	return memoEnv{cover, memo, ref}
}

// checkNeighborhood compares the memoized and unmemoized verdicts of one
// neighborhood under one evidence state: Match output, MaximalMessages
// output and probe count, and the global LogScore of the match set.
func checkNeighborhood(t *testing.T, env memoEnv, entities []core.EntityID, pos, neg core.PairSet) {
	t.Helper()
	gotM := env.memo.Match(entities, pos, neg)
	wantM := env.ref.Match(entities, pos, neg)
	if !gotM.Equal(wantM) {
		t.Fatalf("memoized Match diverged: %d pairs vs %d", gotM.Len(), wantM.Len())
	}
	gotMsgs, gotCalls := env.memo.MaximalMessages(entities, pos, neg, gotM)
	wantMsgs, wantCalls := env.ref.MaximalMessages(entities, pos, neg, wantM)
	if gotCalls != wantCalls {
		t.Fatalf("memoized MaximalMessages calls = %d, want %d", gotCalls, wantCalls)
	}
	if len(gotMsgs) != len(wantMsgs) {
		t.Fatalf("memoized MaximalMessages count = %d, want %d", len(gotMsgs), len(wantMsgs))
	}
	for i := range gotMsgs {
		if !slices.Equal(gotMsgs[i], wantMsgs[i]) {
			t.Fatalf("memoized maximal message %d diverged", i)
		}
	}
	// PairSet iteration order randomizes the summation order, so LogScore
	// carries last-ulp noise between matcher instances (same tolerance as
	// FuzzDenseLogScore) — memoization itself never touches LogScore.
	if got, want := env.memo.LogScore(gotM), env.ref.LogScore(wantM); math.Abs(got-want) > 1e-6 {
		t.Fatalf("memoized LogScore = %v, want %v", got, want)
	}
}

// TestMemoDifferentialGrowth grows evidence at random and checks every
// neighborhood's memoized verdicts stay byte-identical to the unmemoized
// reference at every step — including repeat visits under unchanged
// evidence (hits), visits after in-scope evidence grew (invalidations),
// and first visits (misses). All three counter classes must actually
// fire, or the test is not exercising the memo.
func TestMemoDifferentialGrowth(t *testing.T) {
	env := memoGround(t, 21)
	rng := rand.New(rand.NewSource(21))
	pos, neg := core.NewPairSet(), core.NewPairSet()
	for _, p := range env.memo.Pairs() {
		if rng.Float64() < 0.02 {
			neg.Add(p)
		}
	}
	for step := 0; step < 4; step++ {
		for id := range env.cover.Sets {
			// Two consecutive evaluations per neighborhood: the second runs
			// against unchanged evidence, so it must be served from cache
			// without changing the answer.
			checkNeighborhood(t, env, env.cover.Sets[id], pos, neg)
			checkNeighborhood(t, env, env.cover.Sets[id], pos, neg)
		}
		// Grow the evidence the way SMP does: adopt some of the model's
		// own matches, plus a few arbitrary candidates.
		full := env.ref.Match(env.cover.Sets[0], pos, neg)
		for k := range full {
			if rng.Float64() < 0.5 {
				pos.AddKey(k)
			}
		}
		for _, p := range env.memo.Pairs() {
			if rng.Float64() < 0.01 && !neg.Has(p) {
				pos.Add(p)
			}
		}
	}
	st := env.memo.CacheStats()
	if st.Hits == 0 || st.Misses == 0 || st.Invalidations == 0 {
		t.Fatalf("differential run left a counter class untouched: %+v", st)
	}
	if ref := env.ref.CacheStats(); ref.Lookups() != 0 {
		t.Fatalf("reference matcher consulted the memo: %+v", ref)
	}
}

// TestMemoScopedToPreparedCover pins where memoization applies: entity
// slices outside the prepared cover take the ephemeral path and must
// never touch the counters, and a nil-prepared matcher never memoizes.
func TestMemoScopedToPreparedCover(t *testing.T) {
	env := memoGround(t, 5)
	sub := slices.Clone(env.cover.Sets[0])
	sub = sub[:len(sub)-1] // not a cover set → ephemeral scope
	before := env.memo.CacheStats()
	got := env.memo.Match(sub, nil, nil)
	want := env.ref.Match(sub, nil, nil)
	if !got.Equal(want) {
		t.Fatalf("ephemeral Match diverged")
	}
	if after := env.memo.CacheStats(); after != before {
		t.Fatalf("ephemeral evaluation touched the memo: %+v -> %+v", before, after)
	}
}

// TestSetWeightsInvalidatesMemo: re-weighting changes verdicts but not
// skeletons, so it must drop every cached verdict — and the next
// evaluation must agree with an unmemoized matcher under the new weights.
func TestSetWeightsInvalidatesMemo(t *testing.T) {
	env := memoGround(t, 9)
	entities := env.cover.Sets[0]
	env.memo.Match(entities, nil, nil)
	env.memo.Match(entities, nil, nil) // populate + hit
	if st := env.memo.CacheStats(); st.Hits == 0 {
		t.Fatalf("no hit before re-weighting: %+v", st)
	}
	w := PaperWeights()
	w.Sim1 *= 2
	before := env.memo.CacheStats()
	if err := env.memo.SetWeights(w); err != nil {
		t.Fatal(err)
	}
	if err := env.ref.SetWeights(w); err != nil {
		t.Fatal(err)
	}
	if after := env.memo.CacheStats(); after.Invalidations <= before.Invalidations {
		t.Fatalf("SetWeights dropped no cached verdicts: %+v -> %+v", before, after)
	}
	checkNeighborhood(t, env, entities, nil, nil)
}

// TestScopeForRejectsRecycledBackingArray is the regression test for the
// skeleton-aliasing bug: prepared scopes were keyed by (&set[0], len)
// alone, so rebuilding a cover set in place over the same backing array
// — same pointer, same length, different entities — reused the stale
// skeleton. The prepared matcher must answer exactly like an unprepared
// one for the new contents.
func TestScopeForRejectsRecycledBackingArray(t *testing.T) {
	env := memoGround(t, 13)
	a, b := -1, -1
	for i := 0; i < len(env.cover.Sets) && a < 0; i++ {
		for j := i + 1; j < len(env.cover.Sets); j++ {
			if len(env.cover.Sets[i]) == len(env.cover.Sets[j]) &&
				!slices.Equal(env.cover.Sets[i], env.cover.Sets[j]) {
				a, b = i, j
				break
			}
		}
	}
	if a < 0 {
		t.Skip("cover has no two equal-length distinct sets")
	}
	set := env.cover.Sets[a]
	wantCands := env.memo.Candidates(slices.Clone(env.cover.Sets[b]))
	wantMatch := env.ref.Match(slices.Clone(env.cover.Sets[b]), nil, nil)

	copy(set, env.cover.Sets[b]) // recycle the backing array in place

	gotCands := env.memo.Candidates(set)
	if !slices.Equal(sortedPairs(gotCands), sortedPairs(wantCands)) {
		t.Fatalf("recycled backing array reused a stale skeleton: %d candidates, want %d",
			len(gotCands), len(wantCands))
	}
	if got := env.memo.Match(set, nil, nil); !got.Equal(wantMatch) {
		t.Fatalf("recycled backing array: Match = %d pairs, want %d", got.Len(), wantMatch.Len())
	}
}

func sortedPairs(ps []core.Pair) []core.PairKey {
	out := make([]core.PairKey, len(ps))
	for i, p := range ps {
		out[i] = p.Key()
	}
	slices.Sort(out)
	return out
}

// fuzzMemoEnv shares one memo/reference matcher pair across fuzz
// iterations; both matchers are safe for concurrent Match calls.
var fuzzMemoEnv = sync.OnceValue(func() *memoEnv {
	d := datagen.MustGenerate(datagen.DBLPLike(0.1, 7))
	cover := canopy.BuildCover(d, canopy.DefaultConfig())
	sp := canopy.CandidatePairs(d, cover)
	cands := make([]Candidate, len(sp))
	for i, s := range sp {
		cands[i] = Candidate{Pair: s.Pair, Level: s.Level}
	}
	memo, err := New(d, cands, PaperWeights())
	if err != nil {
		panic(err)
	}
	ref, err := New(d, cands, PaperWeights())
	if err != nil {
		panic(err)
	}
	ref.SetMemoization(false)
	memo.PrepareCover(cover)
	ref.PrepareCover(cover)
	return &memoEnv{cover, memo, ref}
})

// FuzzMemoDifferential drives arbitrary evidence sequences against both
// matchers: whatever pairs the bytes select as V+/V−, the memoized
// Match and MaximalMessages verdicts of every visited neighborhood must
// equal the unmemoized ones. Each neighborhood is visited twice per
// evidence state so cache hits (not just misses) are what is compared.
func FuzzMemoDifferential(f *testing.F) {
	f.Add([]byte{0, 1, 0, 2}, []byte{0, 9}, uint8(3))
	f.Add([]byte{7, 7, 1, 200}, []byte{}, uint8(0))
	f.Add([]byte{}, []byte{3, 3, 3, 3}, uint8(250))
	f.Fuzz(func(t *testing.T, posBytes, negBytes []byte, nbr uint8) {
		env := fuzzMemoEnv()
		pos, neg := core.NewPairSet(), core.NewPairSet()
		for _, p := range pickPairs(env.memo, negBytes) {
			neg.Add(p)
		}
		id := int(nbr) % env.cover.Len()
		entities := env.cover.Sets[id]
		grow := pickPairs(env.memo, posBytes)
		for step := 0; ; step++ {
			for range 2 { // second visit: unchanged evidence, hit path
				gotM := env.memo.Match(entities, pos, neg)
				wantM := env.ref.Match(entities, pos, neg)
				if !gotM.Equal(wantM) {
					t.Fatalf("step %d: memoized Match diverged", step)
				}
				gotMsgs, gotCalls := env.memo.MaximalMessages(entities, pos, neg, gotM)
				wantMsgs, wantCalls := env.ref.MaximalMessages(entities, pos, neg, wantM)
				if gotCalls != wantCalls || len(gotMsgs) != len(wantMsgs) {
					t.Fatalf("step %d: memoized MaximalMessages diverged (%d/%d calls, %d/%d msgs)",
						step, gotCalls, wantCalls, len(gotMsgs), len(wantMsgs))
				}
				for i := range gotMsgs {
					if !slices.Equal(gotMsgs[i], wantMsgs[i]) {
						t.Fatalf("step %d: maximal message %d diverged", step, i)
					}
				}
			}
			if len(grow) == 0 {
				break
			}
			if !neg.Has(grow[0]) {
				pos.Add(grow[0])
			}
			grow = grow[1:]
		}
	})
}
