package mln

import (
	"bytes"

	"repro/internal/core"
	"repro/internal/unionfind"
)

// clampWeight forces a variable true in conditioned probes; it dwarfs any
// achievable score in a ground model.
const clampWeight = 1e9

// maximalScratch is the flat working memory of one MaximalMessages call,
// pooled inside the workspace. Components are materialized by counting
// sort over union-find roots instead of per-root maps, so a call
// allocates only the message slices it actually returns.
type maximalScratch struct {
	rootOf   []int32 // free var -> component root (-1 for isolated vars)
	varCnt   []int32 // per root: member count, then consumed as fill cursor
	varOff   []int32 // per root: start offset into varsBuf
	edgeCnt  []int32
	edgeOff  []int32
	varsBuf  []int32 // members of all components, grouped by root
	edgesBuf []Edge  // edges of all components, grouped by root
	localIdx []int32 // free var -> component-local index
	localMax []float64
	subEff   []float64
	subUnary []float64
	probes   []int32
	probeOut []bool  // len(probes) × component-size probe outputs, flat
	grpCnt   []int32 // per probe root: entailment-group size
	msgIdx   []int32 // per probe root: output message index (-1 until seen)
	dsuComp  *unionfind.DSU
	dsuProbe *unionfind.DSU
}

// grow returns s resized to n (contents unspecified).
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// MaximalMessages implements core.MaximalMessenger — a specialized
// Algorithm 2 for the ground MLN. It builds the conditioned submodel
// once (from the prepared neighborhood skeleton when available),
// decomposes it into connected components of the local interaction graph
// (clamping a variable can only entail variables in its own component,
// so each probe solves just its component), probes only free pairs that
// can reach a non-negative score under total local support, and derives
// the mutual-entailment groups from the probe solutions. Probe solves
// draw their flow networks from the shared solver pool and all component
// bookkeeping from the pooled workspace.
// Prepared cover neighborhoods consult the scope's verdict memo first:
// when the read-set fingerprint matches the cached entry AND base equals
// the cached match verdict (the Step-5 protocol — Match feeds its output
// straight back in), the cached message list is returned as a deep copy,
// skipping every probe solve. calls reports the cached probe count so
// run statistics stay identical with memoization on or off.
func (m *Matcher) MaximalMessages(entities []core.EntityID, mPlus, neg, base core.PairSet) (msgs [][]core.Pair, calls int) {
	ws := m.getWS()
	defer m.putWS(ws)
	sc := m.scopeOf(entities, ws)
	if key := m.memoKey(sc, mPlus, neg, ws); key != nil {
		e := sc.memo.Load()
		if e == nil {
			m.cacheMisses.Add(1)
		} else {
			store := false
			e.mu.Lock()
			switch {
			case !e.valid:
				m.cacheMisses.Add(1)
			case !bytes.Equal(e.states, key):
				m.cacheInvals.Add(1)
			case e.msgsValid && baseMatches(base, e.match):
				m.cacheHits.Add(1)
				msgs, calls = copyMsgs(e.msgs), e.msgCalls
				e.mu.Unlock()
				return msgs, calls
			default:
				m.cacheMisses.Add(1)
				// Cache the computed messages only for Step-5 callers
				// (base equals the cached match verdict): any other base
				// changes the probe set, so the verdict is not the
				// memoizable one.
				store = baseMatches(base, e.match)
			}
			e.mu.Unlock()
			if store {
				defer func() { m.memoStoreMsgs(e, key, msgs, calls) }()
			}
		}
	}
	lm := m.buildLocal(sc, mPlus, neg, ws)
	n := len(lm.free)
	if n == 0 {
		return nil, 0
	}
	mm := &ws.mm

	// Connected components of the local interaction graph. Isolated
	// variables (degree 0) yield only singleton messages and are dropped.
	comp := mm.dsuComp
	comp.Reset(n)
	for _, e := range lm.edges {
		comp.Union(e.I, e.J)
	}
	mm.rootOf = grow(mm.rootOf, n)
	mm.varCnt = grow(mm.varCnt, n)
	mm.edgeCnt = grow(mm.edgeCnt, n)
	for r := 0; r < n; r++ {
		mm.varCnt[r], mm.edgeCnt[r] = 0, 0
	}
	hasComp := false
	for fi := 0; fi < n; fi++ {
		if lm.deg[fi] == 0 {
			mm.rootOf[fi] = -1
			continue
		}
		r := int32(comp.Find(fi))
		mm.rootOf[fi] = r
		mm.varCnt[r]++
		hasComp = true
	}
	if !hasComp {
		return nil, 0
	}
	for _, e := range lm.edges {
		mm.edgeCnt[mm.rootOf[e.I]]++
	}

	// Counting sort: group members and edges by root, preserving the
	// ascending-variable and edge-list orders of the map-based original.
	mm.varOff = grow(mm.varOff, n)
	mm.edgeOff = grow(mm.edgeOff, n)
	sumV, sumE := int32(0), int32(0)
	for r := 0; r < n; r++ {
		mm.varOff[r], mm.edgeOff[r] = sumV, sumE
		sumV += mm.varCnt[r]
		sumE += mm.edgeCnt[r]
		mm.varCnt[r], mm.edgeCnt[r] = 0, 0 // reused as fill cursors
	}
	mm.varsBuf = grow(mm.varsBuf, int(sumV))
	mm.edgesBuf = grow(mm.edgesBuf, int(sumE))
	for fi := 0; fi < n; fi++ {
		if r := mm.rootOf[fi]; r >= 0 {
			mm.varsBuf[mm.varOff[r]+mm.varCnt[r]] = int32(fi)
			mm.varCnt[r]++
		}
	}
	for _, e := range lm.edges {
		r := mm.rootOf[e.I]
		mm.edgesBuf[mm.edgeOff[r]+mm.edgeCnt[r]] = e
		mm.edgeCnt[r]++
	}

	// Local support available to each variable.
	mm.localMax = grow(mm.localMax, n)
	copy(mm.localMax, lm.eff)
	for _, e := range lm.edges {
		mm.localMax[e.I] += e.W
		mm.localMax[e.J] += e.W
	}

	mm.localIdx = grow(mm.localIdx, n)
	// Components in first-seen (ascending first member) order.
	for first := 0; first < n; first++ {
		r := mm.rootOf[first]
		if r < 0 || int(mm.varsBuf[mm.varOff[r]]) != first {
			continue
		}
		vars := mm.varsBuf[mm.varOff[r] : mm.varOff[r]+mm.varCnt[r]]
		if len(vars) < 2 {
			continue
		}
		// Reindexed submodel for this component.
		mm.subEff = grow(mm.subEff, len(vars))
		for li, fi := range vars {
			mm.localIdx[fi] = int32(li)
			mm.subEff[li] = lm.eff[fi]
		}
		compEdges := mm.edgesBuf[mm.edgeOff[r] : mm.edgeOff[r]+mm.edgeCnt[r]]
		for i, e := range compEdges {
			compEdges[i] = Edge{I: int(mm.localIdx[e.I]), J: int(mm.localIdx[e.J]), W: e.W}
		}
		// Probe each viable variable in the component.
		mm.probes = mm.probes[:0]
		for li, fi := range vars {
			p := m.pairs[lm.free[fi]]
			if base.Has(p) || mPlus.Has(p) || mm.localMax[fi] < 0 {
				continue
			}
			mm.probes = append(mm.probes, int32(li))
		}
		if len(mm.probes) == 0 {
			continue
		}
		k := len(vars)
		mm.probeOut = grow(mm.probeOut, len(mm.probes)*k)
		mm.subUnary = grow(mm.subUnary, k)
		for pi, li := range mm.probes {
			copy(mm.subUnary, mm.subEff[:k])
			mm.subUnary[li] = clampWeight
			solveMAPInto(mm.subUnary[:k], compEdges, mm.probeOut[pi*k:(pi+1)*k])
			calls++
		}
		// Mutual entailment: probes p, q are grouped when each appears in
		// the other's conditioned output.
		dsu := mm.dsuProbe
		dsu.Reset(len(mm.probes))
		for pi, li := range mm.probes {
			for qj := pi + 1; qj < len(mm.probes); qj++ {
				lj := mm.probes[qj]
				if mm.probeOut[pi*k+int(lj)] && mm.probeOut[qj*k+int(li)] {
					dsu.Union(pi, qj)
				}
			}
		}
		mm.grpCnt = grow(mm.grpCnt, len(mm.probes))
		mm.msgIdx = grow(mm.msgIdx, len(mm.probes))
		for pi := range mm.probes {
			mm.grpCnt[pi], mm.msgIdx[pi] = 0, -1
		}
		for pi := range mm.probes {
			mm.grpCnt[dsu.Find(pi)]++
		}
		// Materialize only the non-singleton groups (singletons are
		// subsumed by evidence-driven re-evaluation), in first-seen order.
		for pi, li := range mm.probes {
			gr := dsu.Find(pi)
			if mm.grpCnt[gr] < 2 {
				continue
			}
			if mm.msgIdx[gr] < 0 {
				mm.msgIdx[gr] = int32(len(msgs))
				msgs = append(msgs, make([]core.Pair, 0, mm.grpCnt[gr]))
			}
			mi := mm.msgIdx[gr]
			msgs[mi] = append(msgs[mi], m.pairs[lm.free[vars[li]]])
		}
	}
	return msgs, calls
}

var _ core.MaximalMessenger = (*Matcher)(nil)
