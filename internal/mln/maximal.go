package mln

import (
	"repro/internal/core"
	"repro/internal/unionfind"
)

// localModel is the conditioned submodel of one neighborhood: the free
// match variables with their effective unary weights (base weight plus
// evidence-supported groundings) and the in-scope pairwise interactions.
type localModel struct {
	free  []int32 // candidate pair ids
	eff   []float64
	edges []Edge // indices refer to positions in free
	deg   []int  // local interaction degree per free var
	out   core.PairSet
}

// buildLocal assembles the conditioned submodel; out is pre-seeded with
// the in-scope positive evidence (echoed in every Match output).
func (m *Matcher) buildLocal(entities []core.EntityID, pos, neg core.PairSet) *localModel {
	ids := m.scopedIDs(entities)
	lm := &localModel{out: core.NewPairSet()}
	slot := make(map[int32]int, len(ids))
	for _, id := range ids {
		p := m.pairs[id]
		switch {
		case neg.Has(p):
		case pos.Has(p):
			lm.out.Add(p)
		default:
			slot[id] = len(lm.free)
			lm.free = append(lm.free, id)
		}
	}
	lm.eff = make([]float64, len(lm.free))
	lm.deg = make([]int, len(lm.free))
	for fi, id := range lm.free {
		lm.eff[fi] = m.unary[id] + m.w.TieEps
		for _, e := range m.adj[id] {
			w := m.w.Coauthor * float64(e.count)
			if oj, ok := slot[e.other]; ok {
				if e.other > id {
					lm.edges = append(lm.edges, Edge{I: fi, J: oj, W: w})
					lm.deg[fi]++
					lm.deg[oj]++
				}
			} else if pos.Has(m.pairs[e.other]) {
				lm.eff[fi] += w
			}
		}
	}
	return lm
}

// solve runs exact MAP on the local model with an optional clamped-true
// variable (clamp < 0 for none) and returns the assignment.
func (lm *localModel) solve(clamp int) []bool {
	if clamp < 0 {
		return SolveMAP(lm.eff, lm.edges)
	}
	unary := make([]float64, len(lm.eff))
	copy(unary, lm.eff)
	unary[clamp] = clampWeight
	return SolveMAP(unary, lm.edges)
}

// clampWeight forces a variable true in conditioned probes; it dwarfs any
// achievable score in a ground model.
const clampWeight = 1e9

// MaximalMessages implements core.MaximalMessenger — a specialized
// Algorithm 2 for the ground MLN. It builds the conditioned submodel
// once, decomposes it into connected components of the local interaction
// graph (clamping a variable can only entail variables in its own
// component, so each probe solves just its component), probes only free
// pairs that can reach a non-negative score under total local support,
// and derives the mutual-entailment groups from the probe solutions.
func (m *Matcher) MaximalMessages(entities []core.EntityID, mPlus, neg, base core.PairSet) (msgs [][]core.Pair, calls int) {
	lm := m.buildLocal(entities, mPlus, neg)
	n := len(lm.free)
	if n == 0 {
		return nil, 0
	}

	// Connected components of the local interaction graph.
	comp := unionfind.New(n)
	for _, e := range lm.edges {
		comp.Union(e.I, e.J)
	}
	members := map[int][]int{}
	var roots []int
	for fi := 0; fi < n; fi++ {
		if lm.deg[fi] == 0 {
			continue // isolated variables yield only singleton messages
		}
		r := comp.Find(fi)
		if _, ok := members[r]; !ok {
			roots = append(roots, r)
		}
		members[r] = append(members[r], fi)
	}

	// Local support available to each variable.
	localMax := make([]float64, n)
	copy(localMax, lm.eff)
	for _, e := range lm.edges {
		localMax[e.I] += e.W
		localMax[e.J] += e.W
	}
	edgesOf := map[int][]Edge{}
	for _, e := range lm.edges {
		r := comp.Find(e.I)
		edgesOf[r] = append(edgesOf[r], e)
	}

	for _, r := range roots {
		vars := members[r]
		if len(vars) < 2 {
			continue
		}
		// Reindexed submodel for this component.
		local := make(map[int]int, len(vars))
		subEff := make([]float64, len(vars))
		for li, fi := range vars {
			local[fi] = li
			subEff[li] = lm.eff[fi]
		}
		subEdges := make([]Edge, 0, len(edgesOf[r]))
		for _, e := range edgesOf[r] {
			subEdges = append(subEdges, Edge{I: local[e.I], J: local[e.J], W: e.W})
		}
		// Probe each viable variable in the component.
		var probes []int // component-local indices
		for li, fi := range vars {
			p := m.pairs[lm.free[fi]]
			if base.Has(p) || mPlus.Has(p) || localMax[fi] < 0 {
				continue
			}
			probes = append(probes, li)
		}
		if len(probes) == 0 {
			continue
		}
		outputs := make([][]bool, len(probes))
		unary := make([]float64, len(subEff))
		for pi, li := range probes {
			copy(unary, subEff)
			unary[li] = clampWeight
			outputs[pi] = SolveMAP(unary, subEdges)
			calls++
		}
		dsu := unionfind.New(len(probes))
		for pi, li := range probes {
			for qj := pi + 1; qj < len(probes); qj++ {
				lj := probes[qj]
				if outputs[pi][lj] && outputs[qj][li] {
					dsu.Union(pi, qj)
				}
			}
		}
		byRoot := map[int][]core.Pair{}
		var order []int
		for pi, li := range probes {
			gr := dsu.Find(pi)
			if _, ok := byRoot[gr]; !ok {
				order = append(order, gr)
			}
			byRoot[gr] = append(byRoot[gr], m.pairs[lm.free[vars[li]]])
		}
		for _, gr := range order {
			if len(byRoot[gr]) >= 2 { // singletons are dropped by schedulers
				msgs = append(msgs, byRoot[gr])
			}
		}
	}
	return msgs, calls
}

var _ core.MaximalMessenger = (*Matcher)(nil)
