package mln

import (
	"testing"

	"repro/internal/core"
)

// Allocation regression bounds for the matching hot path. SMP/MMP
// multiply the per-invocation cost by Evaluations × rounds, so a future
// change that silently re-introduces per-call map building or solver
// allocations shows up here long before it shows up on a profile.

// TestMatchAllocs bounds the allocations of one warm Match call on a
// prepared cover neighborhood. The remaining allocations are the result
// set itself (which escapes to the caller) plus pool variance; the
// pre-engine cost was ~100 allocations per call on this fixture.
func TestMatchAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates allocation counts")
	}
	env, cands := benchGround(t)
	m, err := New(env.d, cands, PaperWeights())
	if err != nil {
		t.Fatal(err)
	}
	m.PrepareCover(env.cover)
	entities := env.cover.Sets[largestNeighborhood(env.cover)]
	pos := core.NewPairSet()
	m.Match(entities, pos, nil) // warm the pools
	avg := testing.AllocsPerRun(50, func() {
		m.Match(entities, pos, nil)
	})
	const maxAllocs = 40
	if avg > maxAllocs {
		t.Errorf("warm Match allocates %.1f times per call, want <= %d", avg, maxAllocs)
	}
}

// TestMaximalMessagesAllocs bounds one warm COMPUTEMAXIMAL run — the
// inner loop of every MMP evaluation (the pre-engine cost was in the
// hundreds on this fixture).
func TestMaximalMessagesAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates allocation counts")
	}
	env, cands := benchGround(t)
	m, err := New(env.d, cands, PaperWeights())
	if err != nil {
		t.Fatal(err)
	}
	m.PrepareCover(env.cover)
	entities := env.cover.Sets[largestNeighborhood(env.cover)]
	mPlus := core.NewPairSet()
	base := m.Match(entities, mPlus, nil)
	msgs, _ := m.MaximalMessages(entities, mPlus, nil, base)
	avg := testing.AllocsPerRun(20, func() {
		m.MaximalMessages(entities, mPlus, nil, base)
	})
	// Every returned message is one necessarily-escaping allocation; the
	// bound allows those plus a fixed overhead for the msgs spine and pool
	// variance.
	maxAllocs := float64(len(msgs) + 40)
	if avg > maxAllocs {
		t.Errorf("warm MaximalMessages allocates %.1f times per call for %d messages, want <= %.0f",
			avg, len(msgs), maxAllocs)
	}
}
