// Package mln implements the paper's reference collective matcher: the
// Markov-Logic-Network entity matcher of Singla & Domingos (reference
// [18]), restricted — as in the paper's Appendix B — to the four learned
// rules
//
//	similar(e1,e2,1) ⇒ equals(e1,e2)                                −2.28
//	similar(e1,e2,2) ⇒ equals(e1,e2)                                −3.84
//	similar(e1,e2,3) ⇒ equals(e1,e2)                                +12.75
//	coauthor(e1,c1) ∧ coauthor(e2,c2) ∧ equals(c1,c2) ⇒ equals(e1,e2) +2.46
//
// Following §2.1, the score of a match set S is the total weight of rule
// groundings that *fire* in S, and PE(S) ∝ exp(score(S)). Because every
// rule has at most one Match term in its implicant (Proposition 4), the
// resulting model is supermodular: all pairwise interactions between
// match variables are non-negative. MAP inference is therefore *exact*
// via a single s-t minimum cut (Kolmogorov & Zabih [11], which the paper
// cites for precisely this fact), implemented on internal/maxflow.
package mln

import (
	"sync"

	"repro/internal/maxflow"
)

// Edge is a non-negative pairwise interaction between variables I and J.
type Edge struct {
	I, J int
	W    float64
}

// SolveMAP maximizes  f(x) = Σᵢ unary[i]·xᵢ + Σₑ w·x_I·x_J  over x ∈ {0,1}ⁿ
// with all edge weights ≥ 0 (supermodular). It returns the maximizing
// assignment. Among multiple optima it returns the one found on the
// source side of the min cut; callers that need the paper's
// "largest most-likely set" tie-break add a small inclusion bonus to each
// unary weight.
//
// The reduction: maximizing f is minimizing E(x) = −f(x); each product
// term −w·xᵢ·xⱼ is rewritten as −(w/2)(xᵢ+xⱼ) + (w/2)[xᵢ(1−xⱼ) + xⱼ(1−xᵢ)],
// leaving unary terms plus non-negative "disagreement" costs, which map
// directly onto cut capacities.
func SolveMAP(unary []float64, edges []Edge) []bool {
	out := make([]bool, len(unary))
	solveMAPInto(unary, edges, out)
	if len(out) == 0 {
		return nil
	}
	return out
}

// mapSolver bundles the flow network and scratch buffers one MAP solve
// needs. Solvers are pooled: SMP/MMP invoke inference once per
// neighborhood evaluation (plus once per conditioned probe), and reusing
// the graph's arc and level arrays across invocations removes the
// dominant per-call allocations of the hot path.
type mapSolver struct {
	g    *maxflow.Graph
	c    []float64
	seen []bool
}

var solverPool = sync.Pool{New: func() any { return &mapSolver{g: maxflow.New(0)} }}

// solveMAPInto is SolveMAP writing the assignment into out
// (len(out) = len(unary)), drawing all working memory from the solver
// pool.
func solveMAPInto(unary []float64, edges []Edge, out []bool) {
	n := len(unary)
	if n == 0 {
		return
	}
	sv := solverPool.Get().(*mapSolver)
	defer solverPool.Put(sv)
	// c[i] = coefficient of x_i in E after the rewrite.
	if cap(sv.c) < n {
		sv.c = make([]float64, n)
	}
	c := sv.c[:n]
	for i, a := range unary {
		c[i] = -a
	}
	for _, e := range edges {
		c[e.I] -= e.W / 2
		c[e.J] -= e.W / 2
	}
	// Vertices: 0..n-1 variables, n = source, n+1 = sink.
	s, t := n, n+1
	g := sv.g
	g.Reset(n + 2)
	for i, ci := range c {
		if ci > 0 {
			g.AddEdge(i, t, ci) // pay ci when x_i = 1 (source side)
		} else if ci < 0 {
			g.AddEdge(s, i, -ci) // pay −ci when x_i = 0 (sink side)
		}
	}
	for _, e := range edges {
		if e.W <= 0 {
			continue
		}
		g.AddUndirected(e.I, e.J, e.W/2)
	}
	g.MaxFlow(s, t)
	if cap(sv.seen) < n+2 {
		sv.seen = make([]bool, n+2)
	}
	side := g.MinCutSourceInto(s, sv.seen[:n+2])
	copy(out, side[:n])
}

// ScoreAssignment evaluates f(x) for an assignment (test helper and
// promotion checks).
func ScoreAssignment(unary []float64, edges []Edge, x []bool) float64 {
	total := 0.0
	for i, a := range unary {
		if x[i] {
			total += a
		}
	}
	for _, e := range edges {
		if x[e.I] && x[e.J] {
			total += e.W
		}
	}
	return total
}
