package mln

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bib"
	"repro/internal/canopy"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/similarity"
)

// ref is a test reference spec: a surface name and its true author.
type ref struct {
	name  string
	truth int
}

// buildDataset assembles a dataset from per-paper reference lists.
func buildDataset(papers [][]ref) *bib.Dataset {
	d := &bib.Dataset{Name: "test"}
	for p, authors := range papers {
		paper := bib.Paper{Title: "t", Year: 2000}
		for _, a := range authors {
			id := bib.RefID(len(d.Refs))
			d.Refs = append(d.Refs, bib.Reference{
				Name: a.name, Paper: bib.PaperID(p), True: bib.AuthorID(a.truth),
			})
			paper.Refs = append(paper.Refs, id)
		}
		d.Papers = append(d.Papers, paper)
	}
	return d
}

// allPairsCandidates derives candidates from every cross-reference pair
// with non-zero similarity level (tests bypass canopies for full control).
func allPairsCandidates(d *bib.Dataset) []Candidate {
	var out []Candidate
	for i := 0; i < d.NumRefs(); i++ {
		for j := i + 1; j < d.NumRefs(); j++ {
			lvl := similarity.StringLevel(d.Refs[i].Name, d.Refs[j].Name)
			if lvl > similarity.LevelNone {
				out = append(out, Candidate{Pair: core.MakePair(int32(i), int32(j)), Level: lvl})
			}
		}
	}
	return out
}

func newMatcher(t *testing.T, d *bib.Dataset) *Matcher {
	t.Helper()
	m, err := New(d, allPairsCandidates(d), PaperWeights())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func allRefs(d *bib.Dataset) []core.EntityID {
	out := make([]core.EntityID, d.NumRefs())
	for i := range out {
		out[i] = core.EntityID(i)
	}
	return out
}

// TestSim3MatchesAlone: a strong (level 3) pair fires with no relational
// support: +12.75 > 0.
func TestSim3MatchesAlone(t *testing.T) {
	d := buildDataset([][]ref{
		{{"Vibhor Rastogi", 0}, {"Unrelated Person", 1}},
		{{"Vibhor Rastogi", 0}, {"Someone Else", 2}},
	})
	m := newMatcher(t, d)
	out := m.Match(allRefs(d), nil, nil)
	if !out.Has(core.MakePair(0, 2)) {
		t.Fatalf("strong pair not matched: %v", out.Sorted())
	}
}

// TestSim2NeedsSupport: a single medium pair does not fire (−3.84), and a
// single mutually-supporting 2-cycle of medium pairs does not either
// (2·(−3.84) + 2·2.46 = −2.76) — the model is conservative exactly like
// the learned MLN of Appendix B.
func TestSim2NeedsSupport(t *testing.T) {
	d := buildDataset([][]ref{
		{{"V. Rastogi", 0}, {"N. Dalvi", 1}},
		{{"V. Rastogi", 0}, {"N. Dalvi", 1}},
	})
	m := newMatcher(t, d)
	out := m.Match(allRefs(d), nil, nil)
	if out.Len() != 0 {
		t.Fatalf("2-cycle of medium pairs must not fire: %v", out.Sorted())
	}
}

// TestSim2FiresWithEvidence: conditioning the coauthor pair true flips
// the medium pair: −3.84 + 2·2.46 = +1.08 > 0. This is the message-
// passing mechanism in miniature.
func TestSim2FiresWithEvidence(t *testing.T) {
	d := buildDataset([][]ref{
		{{"V. Rastogi", 0}, {"N. Dalvi", 1}},
		{{"V. Rastogi", 0}, {"N. Dalvi", 1}},
	})
	m := newMatcher(t, d)
	dalvi := core.MakePair(1, 3)
	rastogi := core.MakePair(0, 2)
	out := m.Match(allRefs(d), core.NewPairSet(dalvi), nil)
	if !out.Has(rastogi) {
		t.Fatalf("medium pair with matched coauthor must fire: %v", out.Sorted())
	}
	if !out.Has(dalvi) {
		t.Error("positive evidence inside scope must be echoed in the output")
	}
}

// TestTripleCliqueFiresCollectively: two 3-author papers by the same
// trio produce three medium pairs, each supported by the two others:
// 3·(−3.84) + 3·(2·2.46) = +3.24 > 0. None fires alone; all fire
// together — the purely-collective effect of §2.1.
func TestTripleCliqueFiresCollectively(t *testing.T) {
	d := buildDataset([][]ref{
		{{"V. Rastogi", 0}, {"N. Dalvi", 1}, {"M. Garofalakis", 2}},
		{{"V. Rastogi", 0}, {"N. Dalvi", 1}, {"M. Garofalakis", 2}},
	})
	m := newMatcher(t, d)
	out := m.Match(allRefs(d), nil, nil)
	want := core.NewPairSet(core.MakePair(0, 3), core.MakePair(1, 4), core.MakePair(2, 5))
	if !out.Equal(want) {
		t.Fatalf("triple clique = %v, want %v", out.Sorted(), want.Sorted())
	}
	// Ablation: knock out one pair with negative evidence; the other two
	// drop below threshold (2·(−3.84) + 2·2.46 = −2.76) and must vanish.
	out = m.Match(allRefs(d), nil, core.NewPairSet(core.MakePair(0, 3)))
	if out.Len() != 0 {
		t.Fatalf("after knockout, remaining pairs must not fire: %v", out.Sorted())
	}
}

// TestNegativeEvidenceBlocks: a strong pair conditioned false disappears.
func TestNegativeEvidenceBlocks(t *testing.T) {
	d := buildDataset([][]ref{
		{{"Vibhor Rastogi", 0}, {"A B", 1}},
		{{"Vibhor Rastogi", 0}, {"C D", 2}},
	})
	m := newMatcher(t, d)
	p := core.MakePair(0, 2)
	out := m.Match(allRefs(d), nil, core.NewPairSet(p))
	if out.Has(p) {
		t.Fatal("negated pair must not appear in output")
	}
}

// TestScopeRestriction: Match over a subset only reports in-scope pairs,
// and out-of-scope positive evidence still boosts in-scope pairs.
func TestScopeRestriction(t *testing.T) {
	d := buildDataset([][]ref{
		{{"V. Rastogi", 0}, {"N. Dalvi", 1}},
		{{"V. Rastogi", 0}, {"N. Dalvi", 1}},
	})
	m := newMatcher(t, d)
	rastogi := core.MakePair(0, 2)
	dalvi := core.MakePair(1, 3)
	// Scope contains only the Rastogi refs; Dalvi pair is out of scope.
	scope := []core.EntityID{0, 2}
	if got := m.Candidates(scope); len(got) != 1 || got[0] != rastogi {
		t.Fatalf("Candidates(scope) = %v", got)
	}
	out := m.Match(scope, nil, nil)
	if out.Len() != 0 {
		t.Fatalf("unsupported medium pair fired: %v", out.Sorted())
	}
	out = m.Match(scope, core.NewPairSet(dalvi), nil)
	if !out.Has(rastogi) {
		t.Fatal("out-of-scope positive evidence must boost in-scope pair")
	}
	if out.Has(dalvi) {
		t.Fatal("out-of-scope pair must not be reported")
	}
}

// TestLogScoreMatchesBruteForce: Match(all) must be the LogScore argmax
// (largest among ties) over all subsets of candidates.
func TestLogScoreMatchesBruteForce(t *testing.T) {
	d := buildDataset([][]ref{
		{{"V. Rastogi", 0}, {"N. Dalvi", 1}, {"M. Garofalakis", 2}},
		{{"V. Rastogi", 0}, {"N. Dalvi", 1}, {"M. Garofalakis", 2}},
		{{"Vibhor Rastogi", 0}, {"P. Singla", 3}},
	})
	m := newMatcher(t, d)
	cands := m.Candidates(allRefs(d))
	if len(cands) > 16 {
		t.Fatalf("test instance too large for brute force: %d", len(cands))
	}
	bestScore := math.Inf(-1)
	var best core.PairSet
	for mask := 0; mask < 1<<len(cands); mask++ {
		s := core.NewPairSet()
		for i, p := range cands {
			if mask&(1<<i) != 0 {
				s.Add(p)
			}
		}
		sc := m.LogScore(s)
		if sc > bestScore {
			bestScore, best = sc, s
		}
	}
	got := m.Match(allRefs(d), nil, nil)
	if !got.Equal(best) {
		t.Fatalf("Match = %v (score %v), brute argmax = %v (score %v)",
			got.Sorted(), m.LogScore(got), best.Sorted(), bestScore)
	}
}

// TestScoreDeltaConsistent: ScoreDelta must equal LogScore difference.
func TestScoreDeltaConsistent(t *testing.T) {
	d := buildDataset([][]ref{
		{{"V. Rastogi", 0}, {"N. Dalvi", 1}},
		{{"V. Rastogi", 0}, {"N. Dalvi", 1}},
	})
	m := newMatcher(t, d)
	rastogi, dalvi := core.MakePair(0, 2), core.MakePair(1, 3)
	s := core.NewPairSet(dalvi)
	want := m.LogScore(s.WithPair(rastogi)) - m.LogScore(s)
	got := m.ScoreDelta(rastogi, s)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("ScoreDelta = %v, want %v", got, want)
	}
	if m.ScoreDelta(rastogi, core.NewPairSet(rastogi)) != 0 {
		t.Error("ScoreDelta of a member must be 0")
	}
	if m.ScoreDelta(core.MakePair(90, 91), s) > -1e9 {
		t.Error("non-candidate delta must be the penalty")
	}
}

// TestDecideGivenMatchesDelta: DecideGiven(p, S) ⇔ ScoreDelta(p, S) ≥ 0.
func TestDecideGivenMatchesDelta(t *testing.T) {
	d := buildDataset([][]ref{
		{{"V. Rastogi", 0}, {"N. Dalvi", 1}},
		{{"V. Rastogi", 0}, {"N. Dalvi", 1}},
	})
	m := newMatcher(t, d)
	rastogi, dalvi := core.MakePair(0, 2), core.MakePair(1, 3)
	for _, s := range []core.PairSet{core.NewPairSet(), core.NewPairSet(dalvi)} {
		want := m.ScoreDelta(rastogi, s) >= 0
		if got := m.DecideGiven(rastogi, s); got != want {
			t.Fatalf("DecideGiven = %v, delta sign says %v (S=%v)", got, want, s.Sorted())
		}
	}
	if m.DecideGiven(core.MakePair(90, 91), core.NewPairSet()) {
		t.Error("non-candidate must never be decided true")
	}
}

// TestWeightsValidate rejects broken configurations.
func TestWeightsValidate(t *testing.T) {
	w := PaperWeights()
	w.Coauthor = -1
	if w.Validate() == nil {
		t.Error("negative coauthor weight accepted")
	}
	w = PaperWeights()
	w.TieEps = 0.5
	if w.Validate() == nil {
		t.Error("huge TieEps accepted")
	}
	d := buildDataset([][]ref{{{"A B", 0}}})
	if _, err := New(d, nil, w); err == nil {
		t.Error("New accepted invalid weights")
	}
}

func TestNewRejectsBadCandidates(t *testing.T) {
	d := buildDataset([][]ref{{{"A B", 0}, {"A B", 0}}})
	if _, err := New(d, []Candidate{{Pair: core.Pair{A: 1, B: 1}}}, PaperWeights()); err == nil {
		t.Error("reflexive candidate accepted")
	}
	p := core.MakePair(0, 1)
	if _, err := New(d, []Candidate{{Pair: p}, {Pair: p}}, PaperWeights()); err == nil {
		t.Error("duplicate candidate accepted")
	}
}

// generated returns a small generated dataset with its matcher, for
// property tests on realistic structure.
func generated(t *testing.T, seed int64) (*bib.Dataset, *Matcher) {
	t.Helper()
	d := datagen.MustGenerate(datagen.HEPTHLike(0.08, seed))
	cover := canopy.BuildCover(d, canopy.DefaultConfig())
	sp := canopy.CandidatePairs(d, cover)
	cands := make([]Candidate, len(sp))
	for i, s := range sp {
		cands[i] = Candidate{Pair: s.Pair, Level: s.Level}
	}
	m, err := New(d, cands, PaperWeights())
	if err != nil {
		t.Fatal(err)
	}
	return d, m
}

// randomEvidence samples a sound-ish random evidence set from candidates.
func randomEvidence(rng *rand.Rand, pairs []core.Pair, frac float64) core.PairSet {
	s := core.NewPairSet()
	for _, p := range pairs {
		if rng.Float64() < frac {
			s.Add(p)
		}
	}
	return s
}

// TestIdempotenceGenerated: Definition 2 on generated data with random
// evidence, via the framework's checker.
func TestIdempotenceGenerated(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d, m := generated(t, 7)
	entities := allRefs(d)
	pairs := m.Pairs()
	for trial := 0; trial < 5; trial++ {
		pos := randomEvidence(rng, pairs, 0.05)
		neg := randomEvidence(rng, pairs, 0.05).Minus(pos)
		if err := core.CheckIdempotence(m, entities, pos, neg); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// TestMonotonicityGenerated: Definition 3 (i)-(iii) on generated data.
func TestMonotonicityGenerated(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d, m := generated(t, 8)
	entities := allRefs(d)
	pairs := m.Pairs()
	for trial := 0; trial < 5; trial++ {
		// (i) entity monotonicity: random subset vs all.
		var sub []core.EntityID
		for _, e := range entities {
			if rng.Float64() < 0.6 {
				sub = append(sub, e)
			}
		}
		pos := randomEvidence(rng, pairs, 0.04)
		neg := randomEvidence(rng, pairs, 0.04).Minus(pos)
		if err := core.CheckMonotoneEntities(m, sub, entities, pos, neg); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// (ii) positive evidence monotonicity.
		posBig := pos.Union(randomEvidence(rng, pairs, 0.04)).Minus(neg)
		if err := core.CheckMonotonePositive(m, entities, pos.Minus(neg), posBig, neg); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// (iii) negative evidence anti-monotonicity.
		negBig := neg.Union(randomEvidence(rng, pairs, 0.04)).Minus(pos)
		if err := core.CheckMonotoneNegative(m, entities, pos, neg.Intersect(negBig), negBig); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// TestSupermodularityGenerated: Definition 6 via the checker on random
// S ⊆ T and probe pairs (Proposition 4: single-Match-implicant rules).
func TestSupermodularityGenerated(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	_, m := generated(t, 9)
	pairs := m.Pairs()
	if len(pairs) == 0 {
		t.Skip("no candidates generated")
	}
	for trial := 0; trial < 200; trial++ {
		s := randomEvidence(rng, pairs, 0.2)
		extra := randomEvidence(rng, pairs, 0.2)
		tt := s.Union(extra)
		p := pairs[rng.Intn(len(pairs))]
		if err := core.CheckSupermodular(m, s, tt, p, 1e-9); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func BenchmarkMatchNeighborhood(b *testing.B) {
	d := datagen.MustGenerate(datagen.HEPTHLike(0.3, 4))
	cover := canopy.BuildCover(d, canopy.DefaultConfig())
	sp := canopy.CandidatePairs(d, cover)
	cands := make([]Candidate, len(sp))
	for i, s := range sp {
		cands[i] = Candidate{Pair: s.Pair, Level: s.Level}
	}
	m, err := New(d, cands, PaperWeights())
	if err != nil {
		b.Fatal(err)
	}
	// Largest neighborhood.
	var biggest []core.EntityID
	for _, set := range cover.Sets {
		if len(set) > len(biggest) {
			biggest = set
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Match(biggest, nil, nil)
	}
}
