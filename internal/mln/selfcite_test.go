package mln

import (
	"testing"

	"repro/internal/bib"
	"repro/internal/core"
)

// citedDataset: two papers with the same medium-similarity author, where
// the second paper cites the first, plus a control pair with no citation.
func citedDataset() *bib.Dataset {
	d := buildDataset([][]ref{
		{{"V. Rastogi", 0}},
		{{"Vibhor Rastogi", 0}},
		{{"N. Dalvi", 1}},
		{{"Nilesh Dalvi", 1}},
	})
	// Paper 1 cites paper 0 (the Rastogi pair); the Dalvi papers (2, 3)
	// are citation-free.
	d.Papers[1].Cites = []bib.PaperID{0}
	return d
}

// TestSelfCiteRuleFlipsPair: with the citation rule enabled, the cited
// medium pair matches while the control pair does not.
func TestSelfCiteRuleFlipsPair(t *testing.T) {
	d := citedDataset()
	rastogi := core.MakePair(0, 1)
	dalvi := core.MakePair(2, 3)

	// Disabled (the paper's program): neither medium pair fires.
	m := newMatcher(t, d)
	out := m.Match(allRefs(d), nil, nil)
	if out.Has(rastogi) || out.Has(dalvi) {
		t.Fatalf("medium pairs fired without support: %v", out.Sorted())
	}

	// Enabled with a weight that overcomes Sim2: only the cited pair.
	w := PaperWeights()
	w.SelfCite = 4.0 // −3.84 + 4.0 > 0
	if err := m.SetWeights(w); err != nil {
		t.Fatal(err)
	}
	out = m.Match(allRefs(d), nil, nil)
	if !out.Has(rastogi) {
		t.Errorf("cited pair did not fire: %v", out.Sorted())
	}
	if out.Has(dalvi) {
		t.Errorf("citation-free pair fired: %v", out.Sorted())
	}
}

// TestSelfCitePreservesWellBehavedness: the rule is a unary feature, so
// the matcher stays idempotent, monotone and supermodular.
func TestSelfCitePreservesWellBehavedness(t *testing.T) {
	d := citedDataset()
	w := PaperWeights()
	w.SelfCite = 4.0
	m, err := New(d, allPairsCandidates(d), w)
	if err != nil {
		t.Fatal(err)
	}
	entities := allRefs(d)
	rastogi := core.MakePair(0, 1)
	dalvi := core.MakePair(2, 3)
	if err := core.CheckIdempotence(m, entities, core.NewPairSet(), core.NewPairSet()); err != nil {
		t.Error(err)
	}
	if err := core.CheckMonotonePositive(m, entities,
		core.NewPairSet(), core.NewPairSet(dalvi), core.NewPairSet()); err != nil {
		t.Error(err)
	}
	if err := core.CheckSupermodular(m, core.NewPairSet(),
		core.NewPairSet(dalvi), rastogi, 1e-9); err != nil {
		t.Error(err)
	}
}

// TestSelfCiteDirectionless: citation in either direction grounds the
// rule (author self-citation is symmetric evidence for our purposes).
func TestSelfCiteDirectionless(t *testing.T) {
	d := buildDataset([][]ref{
		{{"V. Rastogi", 0}},
		{{"Vibhor Rastogi", 0}},
	})
	d.Papers[0].Cites = []bib.PaperID{1} // earlier paper cites later: odd but legal here
	w := PaperWeights()
	w.SelfCite = 4.0
	m, err := New(d, allPairsCandidates(d), w)
	if err != nil {
		t.Fatal(err)
	}
	out := m.Match(allRefs(d), nil, nil)
	if !out.Has(core.MakePair(0, 1)) {
		t.Errorf("reverse-direction citation not grounded: %v", out.Sorted())
	}
}
