package mln

import "repro/internal/core"

// LogScore implements core.Probabilistic: the unnormalized log
// probability of a global match set, log PE(S) + const = score(S) =
// Σ_{p∈S} (unary(p) + ε) + Σ_{p,q∈S} coauthor groundings. Sets containing
// non-candidate pairs have probability ≈ 0.
//
// The set is translated once into the workspace's dense state vector, so
// the quadratic interaction term costs one slice index per adjacency
// entry instead of a hashed set lookup. logScoreNaive retains the direct
// PairSet evaluation as the reference the fuzz tests compare against.
func (m *Matcher) LogScore(s core.PairSet) float64 {
	ws := m.getWS()
	defer m.putWS(ws)
	st := ws.state
	for k := range s {
		id, ok := m.idOf[k]
		if !ok {
			return nonCandidateLogScore
		}
		st[id] = stFilled | stPos
		ws.touched = append(ws.touched, id)
	}
	total := 0.0
	for _, id := range ws.touched {
		total += m.unary[id] + m.w.TieEps
		for _, e := range m.adj[id] {
			if st[e.other]&stPos != 0 {
				// Each unordered (p, q) interaction is stored on both
				// adjacency lists; halve to count it once.
				total += m.w.Coauthor * float64(e.count) / 2
			}
		}
	}
	return total
}

// logScoreNaive is the pre-dense-view reference implementation of
// LogScore, kept verbatim for differential testing.
func (m *Matcher) logScoreNaive(s core.PairSet) float64 {
	total := 0.0
	for p := range s.All() {
		id, ok := m.idOf[p.Key()]
		if !ok {
			return nonCandidateLogScore
		}
		total += m.unary[id] + m.w.TieEps
		for _, e := range m.adj[id] {
			if s.Has(m.pairs[e.other]) {
				total += m.w.Coauthor * float64(e.count) / 2
			}
		}
	}
	return total
}

// nonCandidateLogScore is returned for sets containing pairs outside the
// model's variable universe.
const nonCandidateLogScore = -1e12

// ScoreDelta returns LogScore(s ∪ {p}) − LogScore(s) in O(deg p); it is
// the cheap conditional-probability computation Algorithm 3's Step 7
// depends on.
func (m *Matcher) ScoreDelta(p core.Pair, s core.PairSet) float64 {
	id, ok := m.idOf[p.Key()]
	if !ok {
		return nonCandidateLogScore
	}
	if s.Has(p) {
		return 0
	}
	delta := m.unary[id] + m.w.TieEps
	for _, e := range m.adj[id] {
		if s.HasKey(m.pairs[e.other].Key()) {
			delta += m.w.Coauthor * float64(e.count)
		}
	}
	return delta
}

// ScoreSetDelta implements core.DeltaScorer:
// LogScore(s ∪ add) − LogScore(s) in O(|add|·deg), counting interactions
// internal to add exactly once. The added-so-far bookkeeping lives in
// the workspace's dense vector (one bit per candidate pair) instead of a
// per-call map.
func (m *Matcher) ScoreSetDelta(add []core.Pair, s core.PairSet) float64 {
	ws := m.getWS()
	defer m.putWS(ws)
	st := ws.state
	total := 0.0
	for _, p := range add {
		if s.Has(p) {
			// Already in s (candidate or not): s ∪ add is unchanged by p.
			continue
		}
		id, ok := m.idOf[p.Key()]
		if !ok {
			return nonCandidateLogScore
		}
		if st[id]&stPos != 0 {
			continue
		}
		total += m.unary[id] + m.w.TieEps
		for _, e := range m.adj[id] {
			if st[e.other]&stPos != 0 || s.HasKey(m.pairs[e.other].Key()) {
				total += m.w.Coauthor * float64(e.count)
			}
		}
		st[id] = stFilled | stPos
		ws.touched = append(ws.touched, id)
	}
	return total
}

// Probeable implements core.ProbeFilter for COMPUTEMAXIMAL: a pair is
// worth probing only if it has interactions (otherwise its messages are
// singletons, which the schedulers drop) and its score can turn
// non-negative under total support. This prunes the probe set from k² to
// the structurally relevant pairs without changing any output.
func (m *Matcher) Probeable(p core.Pair) bool {
	id, ok := m.idOf[p.Key()]
	if !ok {
		return false
	}
	if len(m.adj[id]) == 0 {
		return false
	}
	best := m.unary[id] + m.w.TieEps
	for _, e := range m.adj[id] {
		best += m.w.Coauthor * float64(e.count)
	}
	return best >= 0
}

// DecideGiven implements core.ConditionalDecider for the UB oracle: p is
// matched when its conditional score gain, with every other pair clamped
// to its membership in given, is non-negative.
func (m *Matcher) DecideGiven(p core.Pair, given core.PairSet) bool {
	id, ok := m.idOf[p.Key()]
	if !ok {
		return false
	}
	delta := m.unary[id] + m.w.TieEps
	for _, e := range m.adj[id] {
		if given.HasKey(m.pairs[e.other].Key()) {
			delta += m.w.Coauthor * float64(e.count)
		}
	}
	return delta >= 0
}
