package cem_test

// Fixture-level fault-injection differentials for the sharded-net
// backend: a worker killed at every round boundary, and seeded
// drop/delay/duplicate schedules, must all land byte-identically on
// the uninterrupted pool run's match set. These run the real HEPTH
// seed corpus with the MLN matcher — the same ground the golden
// fixtures pin — so transport faults are exercised against real
// evidence-exchange traffic, not toy models.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	cem "repro"
	"repro/internal/core"
	emnet "repro/internal/net"
	"repro/internal/net/faultnet"
)

// faultyNetBackend assembles a sharded-net backend whose streams run
// through the injector, with supervision timings tight enough that a
// dropped frame costs milliseconds.
func faultyNetBackend(exp *cem.Experiment, runner *cem.Runner, scheme string, k int, inj *faultnet.Injector) *emnet.Backend {
	cfg := core.Config{
		Cover:    exp.Cover,
		Matcher:  runner.Matcher(),
		Relation: exp.Dataset.Coauthor(),
	}
	opts := emnet.Options{
		RoundDeadline:     500 * time.Millisecond,
		HeartbeatInterval: 50 * time.Millisecond,
		RetryBackoff:      2 * time.Millisecond,
		MaxRetries:        6,
	}
	opts.Spawn = inj.Spawner(emnet.LocalSpawner(cfg, scheme, emnet.WorkerOptions{Wrap: inj.WrapWorker}))
	return &emnet.Backend{Workers: k, Opts: opts}
}

// coreSchemeName maps the public scheme to the engine's canonical name
// for worker-side plan construction.
func coreSchemeName(s cem.Scheme) string {
	switch s {
	case cem.SchemeNoMP:
		return "NO-MP"
	case cem.SchemeSMP:
		return "SMP"
	case cem.SchemeMMP:
		return "MMP"
	}
	return ""
}

// TestDistributedKillAtEveryRound: on the HEPTH seed corpus, SIGKILL a
// worker at every round boundary of the run — it receives the round's
// assignment, then its stream dies for good. Every interrupted fleet
// must render the exact fixture match set the pool backend produces,
// and must report the reassignment that absorbed the loss.
func TestDistributedKillAtEveryRound(t *testing.T) {
	exp, err := cem.New(cem.NewDataset(cem.HEPTH, 0.25, 42))
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []cem.Scheme{cem.SchemeSMP, cem.SchemeMMP} {
		runner, err := exp.Runner(cem.MatcherMLN)
		if err != nil {
			t.Fatal(err)
		}
		pool, err := runner.Run(context.Background(), scheme)
		if err != nil {
			t.Fatal(err)
		}
		want := renderMatches(pool)

		kills := 0
		const victim = 1
		for round := 1; round <= 8; round++ {
			inj := faultnet.New(faultnet.Plan{
				Seed:        int64(round),
				KillAtRound: map[int]int{victim: round},
				Permadead:   true,
			})
			b := faultyNetBackend(exp, runner, coreSchemeName(scheme), 3, inj)
			killed, err := exp.Runner(cem.MatcherMLN, cem.WithBackend(b))
			if err != nil {
				t.Fatal(err)
			}
			res, err := killed.Run(context.Background(), scheme)
			if err != nil {
				t.Fatalf("%s kill at round %d: a killed worker must never fail the run: %v", scheme, round, err)
			}
			if got := renderMatches(res); got != want {
				t.Errorf("%s kill at round %d: match set diverges: %s", scheme, round, firstDiff(got, want))
			}
			if !inj.Killed(victim) {
				continue // the victim drew no assignment that round (or the run was over)
			}
			kills++
			if res.Stats.Reassignments < 1 {
				t.Errorf("%s kill at round %d: worker died but Reassignments = %d", scheme, round, res.Stats.Reassignments)
			}
		}
		if kills < 2 {
			t.Errorf("%s: only %d kills fired across rounds 1-8; the schedule never bit", scheme, kills)
		}
	}
}

// TestDistributedFaultSchedules: three seeded drop/delay/duplicate
// schedules per golden corpus × matcher, each faulted fleet compared
// against the PINNED fixture file — the same bytes the fault-free
// golden suite asserts. Schedules perturb which worker computes what
// and when — never what the run outputs.
func TestDistributedFaultSchedules(t *testing.T) {
	for _, ds := range []cem.DatasetKind{cem.HEPTH, cem.DBLP} {
		exp, err := cem.New(cem.NewDataset(ds, 0.25, 42))
		if err != nil {
			t.Fatal(err)
		}
		for _, matcher := range []string{cem.MatcherMLN, cem.MatcherRules} {
			fixture := filepath.Join("testdata", "golden",
				fmt.Sprintf("%s-%s-%s.golden", ds, matcher, cem.SchemeSMP))
			want, err := os.ReadFile(fixture)
			if err != nil {
				t.Fatalf("missing fixture %s: %v", fixture, err)
			}
			runner, err := exp.Runner(matcher)
			if err != nil {
				t.Fatal(err)
			}
			for seed := int64(1); seed <= 3; seed++ {
				inj := faultnet.New(faultnet.Plan{
					Seed:      seed,
					DropRate:  0.1,
					DupRate:   0.15,
					DelayRate: 0.25,
					MaxDelay:  3 * time.Millisecond,
				})
				b := faultyNetBackend(exp, runner, "SMP", 3, inj)
				faulty, err := exp.Runner(matcher, cem.WithBackend(b))
				if err != nil {
					t.Fatal(err)
				}
				res, err := faulty.Run(context.Background(), cem.SchemeSMP)
				if err != nil {
					t.Fatalf("%s-%s seed %d: faulted run failed: %v", ds, matcher, seed, err)
				}
				if got := renderMatches(res); got != string(want) {
					t.Errorf("%s-%s seed %d: match set diverges from %s: %s",
						ds, matcher, seed, fixture, firstDiff(got, string(want)))
				}
			}
		}
	}
}
