package cem_test

// Randomized differential harness for the incremental execution path:
// records arrive in seeded random order and random batch splits, are
// ingested with Pipeline.Update (delta blocking + warm-started
// matching), and the result after the final batch must be BYTE-IDENTICAL
// to a cold Pipeline.Run over the union — for every scheme, on the pool
// and the sharded backend alike — while spending strictly fewer matcher
// calls than the cold run. This is the empirical form of the paper's
// consistency guarantees applied to delta ingestion: re-activating only
// the neighborhoods an arrival touches reaches the same fixpoint as
// re-running everything.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	cem "repro"
	"repro/match"
)

// arrival is one randomized ingestion sequence: a shuffled record order
// cut into a base batch (55–75% of the corpus) followed by small
// trailing batches (1–8% each) — the steady-state streaming regime.
func arrival(rng *rand.Rand, records []cem.Record) [][]cem.Record {
	recs := append([]cem.Record(nil), records...)
	rng.Shuffle(len(recs), func(i, j int) { recs[i], recs[j] = recs[j], recs[i] })
	n := len(recs)
	batches := [][]cem.Record{}
	lo := 0
	for lo < n {
		var hi int
		if lo == 0 {
			hi = n*11/20 + rng.Intn(n/5+1) // 55–75%
		} else {
			hi = lo + 1 + rng.Intn(n*8/100+1) // 1–8%
		}
		if hi > n {
			hi = n
		}
		batches = append(batches, recs[lo:hi])
		lo = hi
	}
	return batches
}

// ingest folds Update over an arrival sequence and asserts the warm-path
// invariants: every trailing batch warm-starts (the arrival splits used
// here keep the cover additive) and, when a cold reference is supplied,
// every warm-started update spends strictly fewer matcher calls than the
// cold run — the whole point of delta ingestion.
func ingest(t *testing.T, pipe *cem.Pipeline, batches [][]cem.Record, cold *cem.PipelineResult) *cem.PipelineResult {
	t.Helper()
	var res *cem.PipelineResult
	var err error
	for bi, batch := range batches {
		res, err = pipe.Update(context.Background(), res, batch)
		if err != nil {
			t.Fatalf("update %d: %v", bi, err)
		}
		if bi == 0 {
			continue
		}
		if !res.WarmStarted {
			t.Errorf("update %d (%d records) did not warm-start (forced rerun: %v)",
				bi, len(batch), res.ForcedRerun)
		}
		if cold != nil && res.Stats.MatcherCalls >= cold.Stats.MatcherCalls {
			t.Errorf("update %d (%d records): %d matcher calls, cold run needs only %d — no incremental savings",
				bi, len(batch), res.Stats.MatcherCalls, cold.Stats.MatcherCalls)
		}
	}
	return res
}

// incrementalMatrix: every scheme with round structure, on both
// execution backends. FULL and UB have no incremental path.
var incrementalBackends = []struct {
	name string
	opt  cem.RunnerOption
}{
	{"pool", cem.WithBackend(cem.NewPoolBackend())},
	{"sharded4", cem.WithShardCount(4)},
}

// TestIncrementalMatchesColdRun is the acceptance harness: 5 arrival
// seeds × both corpora × {nomp, smp, mmp} × {pool, sharded K=4}, each
// asserting byte-identical results and strict matcher-call savings.
func TestIncrementalMatchesColdRun(t *testing.T) {
	for _, ds := range goldenSeeds {
		records, err := cem.GenerateRecords(ds.kind, ds.scale, ds.seed)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(0); seed < 5; seed++ {
			batches := arrival(rand.New(rand.NewSource(seed)), records)
			var union []cem.Record
			for _, b := range batches {
				union = append(union, b...)
			}
			for _, scheme := range []cem.Scheme{cem.SchemeNoMP, cem.SchemeSMP, cem.SchemeMMP} {
				// One cold reference per scheme: backends are output- and
				// stats-identical (consistency), so the pool run grades both.
				coldPipe, err := cem.NewPipeline(
					cem.WithScheme(scheme),
					cem.WithRunnerOptions(cem.WithBackend(cem.NewPoolBackend())),
				)
				if err != nil {
					t.Fatal(err)
				}
				cold, err := coldPipe.Run(context.Background(), union)
				if err != nil {
					t.Fatal(err)
				}
				want := renderMatches(cold.Result)
				for _, backend := range incrementalBackends {
					t.Run(fmt.Sprintf("%s-seed%d-%s-%s", ds.kind, seed, scheme, backend.name), func(t *testing.T) {
						pipe, err := cem.NewPipeline(
							cem.WithScheme(scheme),
							cem.WithRunnerOptions(backend.opt),
						)
						if err != nil {
							t.Fatal(err)
						}
						res := ingest(t, pipe, batches, cold)
						if got := renderMatches(res.Result); got != want {
							t.Errorf("incremental result diverges from cold run over %d records in %d batches: %s",
								len(union), len(batches), firstDiff(got, want))
						}
					})
				}
			}
		}
	}
}

// TestIncrementalPrefixesMatchColdRuns sharpens the harness on one
// arrival per corpus: after EVERY batch, the incremental state equals a
// cold run over exactly the records ingested so far — the incremental
// path is indistinguishable at every prefix, not just at the end.
func TestIncrementalPrefixesMatchColdRuns(t *testing.T) {
	for _, ds := range goldenSeeds {
		records, err := cem.GenerateRecords(ds.kind, ds.scale, ds.seed)
		if err != nil {
			t.Fatal(err)
		}
		batches := arrival(rand.New(rand.NewSource(11)), records)
		pipe, err := cem.NewPipeline(cem.WithScheme(cem.SchemeSMP))
		if err != nil {
			t.Fatal(err)
		}
		var res *cem.PipelineResult
		var prefix []cem.Record
		for bi, batch := range batches {
			prefix = append(prefix, batch...)
			res, err = pipe.Update(context.Background(), res, batch)
			if err != nil {
				t.Fatal(err)
			}
			cold, err := pipe.Run(context.Background(), prefix)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := renderMatches(res.Result), renderMatches(cold.Result); got != want {
				t.Errorf("%s: prefix after batch %d (%d records) diverges from cold run: %s",
					ds.kind, bi, len(prefix), firstDiff(got, want))
			}
		}
	}
}

// TestIncrementalRulesMatcher runs the differential harness for the
// Type-I rules matcher (NO-MP and SMP; it is not probabilistic), with
// and without the end-of-run transitive closure — the closure must
// compose with warm starts (continuations are seeded from the raw
// pre-closure evidence).
func TestIncrementalRulesMatcher(t *testing.T) {
	for _, ds := range goldenSeeds {
		records, err := cem.GenerateRecords(ds.kind, ds.scale, ds.seed)
		if err != nil {
			t.Fatal(err)
		}
		batches := arrival(rand.New(rand.NewSource(2)), records)
		var union []cem.Record
		for _, b := range batches {
			union = append(union, b...)
		}
		for _, scheme := range []cem.Scheme{cem.SchemeNoMP, cem.SchemeSMP} {
			for _, closure := range []bool{false, true} {
				opts := []cem.PipelineOption{
					cem.WithMatcher(cem.MatcherRules),
					cem.WithScheme(scheme),
					cem.WithRunnerOptions(cem.WithBackend(cem.NewPoolBackend())),
				}
				if closure {
					opts = append(opts, cem.WithRunnerOptions(cem.WithTransitiveClosure()))
				}
				pipe, err := cem.NewPipeline(opts...)
				if err != nil {
					t.Fatal(err)
				}
				cold, err := pipe.Run(context.Background(), union)
				if err != nil {
					t.Fatal(err)
				}
				res := ingest(t, pipe, batches, cold)
				if got, want := renderMatches(res.Result), renderMatches(cold.Result); got != want {
					t.Errorf("%s/rules/%s closure=%v: incremental diverges: %s",
						ds.kind, scheme, closure, firstDiff(got, want))
				}
			}
		}
	}
}

// streamBatches is the pinned 3-batch arrival of the streaming golden
// fixtures: shuffle seed 7, cuts at 60% and 80% (a shape on which every
// corpus stays additive, so the fixtures pin the warm path, not the
// fallback).
func streamBatches(records []cem.Record) [][]cem.Record {
	rng := rand.New(rand.NewSource(7))
	recs := append([]cem.Record(nil), records...)
	rng.Shuffle(len(recs), func(i, j int) { recs[i], recs[j] = recs[j], recs[i] })
	n := len(recs)
	return [][]cem.Record{recs[: n*6/10 : n*6/10], recs[n*6/10 : n*8/10], recs[n*8/10:]}
}

// TestGoldenStreamingFixtures pins the streaming path's exact output:
// 2 corpora × {smp, mmp} × the pinned 3-batch arrival, committed under
// testdata/golden/stream-*.golden and refreshed with -update like the
// other fixtures.
func TestGoldenStreamingFixtures(t *testing.T) {
	for _, ds := range goldenSeeds {
		records, err := cem.GenerateRecords(ds.kind, ds.scale, ds.seed)
		if err != nil {
			t.Fatal(err)
		}
		batches := streamBatches(records)
		for _, scheme := range []cem.Scheme{cem.SchemeSMP, cem.SchemeMMP} {
			name := fmt.Sprintf("stream-%s-%s-%s", ds.kind, cem.MatcherMLN, scheme)
			t.Run(name, func(t *testing.T) {
				pipe, err := cem.NewPipeline(cem.WithScheme(scheme))
				if err != nil {
					t.Fatal(err)
				}
				res := ingest(t, pipe, batches, nil)
				got := renderMatches(res.Result)
				path := filepath.Join("testdata", "golden", name+".golden")
				if *updateGolden {
					if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing fixture %s (run `go test -run TestGoldenStreamingFixtures -update`): %v", path, err)
				}
				if got != string(want) {
					t.Errorf("streaming match set diverges from %s: %s", path, firstDiff(got, string(want)))
				}
			})
		}
	}
}

// TestUpdateUnlabeledStream: ingestion of unlabeled records must skip
// the metrics without failing — labels are an evaluation nicety, not an
// ingestion requirement.
func TestUpdateUnlabeledStream(t *testing.T) {
	records, err := cem.GenerateRecords(cem.DBLP, 0.25, 42)
	if err != nil {
		t.Fatal(err)
	}
	// Strip every label (and keep groups) by re-wrapping the records.
	stripped := make([]cem.Record, len(records))
	for i, r := range records {
		b := r.(cem.BasicRecord)
		stripped[i] = cem.BasicRecord{Key: b.Key, Group: b.Group, Gold: -1}
	}
	pipe, err := cem.NewPipeline(cem.WithScheme(cem.SchemeSMP))
	if err != nil {
		t.Fatal(err)
	}
	res := ingest(t, pipe, streamBatches(stripped), nil)
	if res.Labeled {
		t.Error("unlabeled stream reported Labeled")
	}
	if res.Report != nil || res.BCubed != nil {
		t.Error("unlabeled stream computed metrics")
	}
	if res.Matches.Len() == 0 {
		t.Error("unlabeled stream produced no matches at all")
	}

	// The labels must not influence matching: the unlabeled stream's
	// match set equals the labeled one's.
	labeled := ingest(t, pipe, streamBatches(records), nil)
	if !res.Matches.Equal(labeled.Matches) {
		t.Error("labels changed the match set")
	}
	if labeled.Report == nil || labeled.BCubed == nil {
		t.Error("fully labeled stream skipped metrics")
	}
}

// TestUpdateWarmTrailResume: an Update killed mid-continuation leaves a
// resumable checkpoint trail (the warm seed is its round-1 record);
// Pipeline.Resume over the union records must finish it and land on the
// uninterrupted Update's exact result.
func TestUpdateWarmTrailResume(t *testing.T) {
	records, err := cem.GenerateRecords(cem.HEPTH, 0.25, 42)
	if err != nil {
		t.Fatal(err)
	}
	batches := streamBatches(records)
	union := append(append(append([]cem.Record(nil), batches[0]...), batches[1]...), batches[2]...)

	build := func(dir string, extra ...cem.RunnerOption) *cem.Pipeline {
		t.Helper()
		ropts := append([]cem.RunnerOption{cem.WithCheckpointDir(dir)}, extra...)
		pipe, err := cem.NewPipeline(
			cem.WithScheme(cem.SchemeSMP),
			cem.WithRunnerOptions(ropts...),
		)
		if err != nil {
			t.Fatal(err)
		}
		return pipe
	}

	// Uninterrupted reference: base + one warm update.
	clean, err := build(t.TempDir()).Update(context.Background(), nil, batches[0])
	if err != nil {
		t.Fatal(err)
	}
	cleanRes, err := build(t.TempDir()).Update(context.Background(), clean,
		append(append([]cem.Record(nil), batches[1]...), batches[2]...))
	if err != nil {
		t.Fatal(err)
	}
	if !cleanRes.WarmStarted {
		t.Fatal("reference update did not warm-start")
	}

	// Killed continuation: cancel at the first progress event past the
	// seed round, leaving the synthetic round-1 record (plus possibly
	// round 2) on disk.
	dir := t.TempDir()
	base, err := build(dir).Update(context.Background(), nil, batches[0])
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	killed := build(dir, cem.WithProgress(func(e match.ProgressEvent) {
		if e.Round >= 2 {
			cancel()
		}
	}))
	_, err = killed.Update(ctx, base,
		append(append([]cem.Record(nil), batches[1]...), batches[2]...))
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("expected the killed update to report cancellation, got %v", err)
	}
	if files, _ := filepath.Glob(filepath.Join(dir, "round-*.ckpt")); len(files) == 0 {
		t.Fatal("killed warm update left no checkpoint trail")
	}

	resumed, err := build(dir).Resume(context.Background(), union)
	if err != nil {
		t.Fatalf("resuming the warm trail: %v", err)
	}
	if got, want := renderMatches(resumed.Result), renderMatches(cleanRes.Result); got != want {
		t.Errorf("resumed warm trail diverges from uninterrupted update: %s", firstDiff(got, want))
	}
}

// TestUpdateStaleTrailRejected: a checkpoint trail written before a
// delta fingerprints the pre-delta cover; once ingestion changed the
// cover, resuming that trail must be refused, not silently replayed
// against the wrong neighborhoods.
func TestUpdateStaleTrailRejected(t *testing.T) {
	records, err := cem.GenerateRecords(cem.DBLP, 0.25, 42)
	if err != nil {
		t.Fatal(err)
	}
	batches := streamBatches(records)
	dir := t.TempDir()
	pipe, err := cem.NewPipeline(
		cem.WithScheme(cem.SchemeSMP),
		cem.WithRunnerOptions(cem.WithCheckpointDir(dir)),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pipe.Update(context.Background(), nil, batches[0]); err != nil {
		t.Fatal(err)
	}
	// The trail in dir fingerprints the batch-0 cover. Resuming with the
	// delta ingested (more entities, more neighborhoods) must fail.
	union := append(append([]cem.Record(nil), batches[0]...), batches[1]...)
	if _, err := pipe.Resume(context.Background(), union); err == nil {
		t.Error("resuming a pre-delta trail against the post-delta cover succeeded")
	}
}

// TestRunFromValidation pins the snapshot plumbing's error paths at the
// public Runner surface.
func TestRunFromValidation(t *testing.T) {
	small, err := cem.New(cem.NewDataset(cem.DBLP, 0.1, 7))
	if err != nil {
		t.Fatal(err)
	}
	big, err := cem.New(cem.NewDataset(cem.DBLP, 0.25, 42))
	if err != nil {
		t.Fatal(err)
	}
	runner, err := big.Runner(cem.MatcherMLN)
	if err != nil {
		t.Fatal(err)
	}
	smallRunner, err := small.Runner(cem.MatcherMLN)
	if err != nil {
		t.Fatal(err)
	}
	res, err := smallRunner.Run(context.Background(), cem.SchemeSMP)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := small.Snapshot(res)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := runner.RunFrom(context.Background(), cem.SchemeSMP, nil, nil); err == nil {
		t.Error("RunFrom accepted a nil snapshot")
	}
	if _, err := runner.RunFrom(context.Background(), cem.SchemeFull, snap, nil); err == nil {
		t.Error("RunFrom accepted FULL (no round structure)")
	}
	if _, err := runner.RunFrom(context.Background(), cem.SchemeMMP, snap, nil); err == nil {
		t.Error("RunFrom accepted a scheme different from the snapshot's")
	}
	rules, err := big.Runner(cem.MatcherRules)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rules.RunFrom(context.Background(), cem.SchemeSMP, snap, nil); err == nil {
		t.Error("RunFrom accepted a snapshot from a different matcher")
	}
	// Shrinking: a snapshot over MORE entities than the target cover.
	bigRes, err := runner.Run(context.Background(), cem.SchemeSMP)
	if err != nil {
		t.Fatal(err)
	}
	bigSnap, err := big.Snapshot(bigRes)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := smallRunner.RunFrom(context.Background(), cem.SchemeSMP, bigSnap, nil); err == nil {
		t.Error("RunFrom accepted a snapshot spanning more entities than the cover")
	}
	// The happy path: continuing the same experiment with an empty seed
	// is a no-op that returns the snapshot's own matches.
	idle, err := smallRunner.RunFrom(context.Background(), cem.SchemeSMP, snap, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !idle.Matches.Equal(res.Matches) {
		t.Error("empty-seed RunFrom diverges from the snapshot run")
	}
}

// TestUpdateAcrossBlockingConfigs: handing a prior to a pipeline with a
// DIFFERENT blocking configuration must not reuse the prior's index —
// its cover would match the wrong pipeline. The foreign branch rebuilds
// and still equals its own cold run.
func TestUpdateAcrossBlockingConfigs(t *testing.T) {
	records, err := cem.GenerateRecords(cem.DBLP, 0.25, 42)
	if err != nil {
		t.Fatal(err)
	}
	batches := streamBatches(records)
	union := append(append([]cem.Record(nil), batches[0]...), batches[1]...)
	loose, err := cem.NewPipeline(cem.WithScheme(cem.SchemeSMP))
	if err != nil {
		t.Fatal(err)
	}
	tight, err := cem.NewPipeline(cem.WithScheme(cem.SchemeSMP), cem.WithMaxNeighborhood(8))
	if err != nil {
		t.Fatal(err)
	}
	prior, err := loose.Update(context.Background(), nil, batches[0])
	if err != nil {
		t.Fatal(err)
	}
	cross, err := tight.Update(context.Background(), prior, batches[1])
	if err != nil {
		t.Fatal(err)
	}
	if cross.WarmStarted || !cross.ForcedRerun {
		t.Errorf("cross-config update warm-started (warm=%v forced=%v); foreign evidence must force a cold run",
			cross.WarmStarted, cross.ForcedRerun)
	}
	cold, err := tight.Run(context.Background(), union)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := renderMatches(cross.Result), renderMatches(cold.Result); got != want {
		t.Errorf("cross-config update diverges from the target pipeline's cold run: %s", firstDiff(got, want))
	}
	// The rebuilt branch is self-consistent: the NEXT batch on the same
	// pipeline still equals its cold run. (With a MaxNeighborhood cap,
	// arrivals may displace canopy members, so this config legitimately
	// alternates between warm starts and forced reruns — correctness,
	// not warmth, is the invariant here.)
	next, err := tight.Update(context.Background(), cross, batches[2])
	if err != nil {
		t.Fatal(err)
	}
	coldAll, err := tight.Run(context.Background(), append(union, batches[2]...))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := renderMatches(next.Result), renderMatches(coldAll.Result); got != want {
		t.Errorf("follow-up update after a cross-config rebuild diverges from cold: %s", firstDiff(got, want))
	}
}

// TestSnapshotRejectsWholeSetSchemes: FULL and UB results have no round
// structure and cannot seed continuations.
func TestSnapshotRejectsWholeSetSchemes(t *testing.T) {
	exp, err := cem.New(cem.NewDataset(cem.DBLP, 0.1, 7))
	if err != nil {
		t.Fatal(err)
	}
	runner, err := exp.Runner(cem.MatcherMLN)
	if err != nil {
		t.Fatal(err)
	}
	res, err := runner.Run(context.Background(), cem.SchemeFull)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exp.Snapshot(res); err == nil {
		t.Error("Snapshot accepted a FULL result")
	}
}

// TestUpdateArgumentErrors pins Update's own validation.
func TestUpdateArgumentErrors(t *testing.T) {
	records, err := cem.GenerateRecords(cem.DBLP, 0.1, 7)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := cem.NewPipeline(cem.WithScheme(cem.SchemeSMP))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pipe.Update(context.Background(), nil, nil); err == nil {
		t.Error("Update accepted an empty batch")
	}
	full, err := cem.NewPipeline(cem.WithScheme(cem.SchemeFull))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := full.Update(context.Background(), nil, records); err == nil {
		t.Error("Update accepted the FULL scheme (no incremental path)")
	}
	if _, err := pipe.Update(context.Background(), &cem.PipelineResult{}, records); err == nil {
		t.Error("Update accepted a prior without ingestion state")
	}
}

// TestUpdateForkedPrior: Updates share the blocking index along a
// chain, so re-updating from a STALE prior (a fork — the index has
// already advanced past it) must not silently reuse the other branch's
// state: the fork is replayed fresh and still matches its cold run.
func TestUpdateForkedPrior(t *testing.T) {
	records, err := cem.GenerateRecords(cem.DBLP, 0.25, 42)
	if err != nil {
		t.Fatal(err)
	}
	batches := streamBatches(records)
	pipe, err := cem.NewPipeline(cem.WithScheme(cem.SchemeSMP))
	if err != nil {
		t.Fatal(err)
	}
	base, err := pipe.Update(context.Background(), nil, batches[0])
	if err != nil {
		t.Fatal(err)
	}
	// First branch advances the shared index to all three batches.
	mid, err := pipe.Update(context.Background(), base, batches[1])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pipe.Update(context.Background(), mid, batches[2]); err != nil {
		t.Fatal(err)
	}
	// Second branch forks from the now-stale base with batch 2 only.
	fork, err := pipe.Update(context.Background(), base, batches[2])
	if err != nil {
		t.Fatal(err)
	}
	union := append(append([]cem.Record(nil), batches[0]...), batches[2]...)
	cold, err := pipe.Run(context.Background(), union)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := renderMatches(fork.Result), renderMatches(cold.Result); got != want {
		t.Errorf("forked-prior update diverges from its cold run: %s", firstDiff(got, want))
	}
}

// TestUpdateConcurrentForks: two goroutines updating from the SAME
// prior race on the shared blocking index; the atomic AddFrom advance
// means one branch wins it and the other rebuilds — both must match
// their respective cold runs. (Run under -race in CI.)
func TestUpdateConcurrentForks(t *testing.T) {
	records, err := cem.GenerateRecords(cem.DBLP, 0.25, 42)
	if err != nil {
		t.Fatal(err)
	}
	batches := streamBatches(records)
	pipe, err := cem.NewPipeline(cem.WithScheme(cem.SchemeSMP))
	if err != nil {
		t.Fatal(err)
	}
	base, err := pipe.Update(context.Background(), nil, batches[0])
	if err != nil {
		t.Fatal(err)
	}
	results := make([]*cem.PipelineResult, 2)
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for i, batch := range [][]cem.Record{batches[1], batches[2]} {
		wg.Add(1)
		go func(i int, batch []cem.Record) {
			defer wg.Done()
			results[i], errs[i] = pipe.Update(context.Background(), base, batch)
		}(i, batch)
	}
	wg.Wait()
	for i, batch := range [][]cem.Record{batches[1], batches[2]} {
		if errs[i] != nil {
			t.Fatalf("concurrent fork %d: %v", i, errs[i])
		}
		union := append(append([]cem.Record(nil), batches[0]...), batch...)
		cold, err := pipe.Run(context.Background(), union)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := renderMatches(results[i].Result), renderMatches(cold.Result); got != want {
			t.Errorf("concurrent fork %d diverges from its cold run: %s", i, firstDiff(got, want))
		}
	}
}

// TestUpdatePriorFromRun: a prior produced by Run (no streaming index)
// is upgraded transparently — Update replays the records once, then
// warm-starts, and the result still matches the cold union run.
func TestUpdatePriorFromRun(t *testing.T) {
	records, err := cem.GenerateRecords(cem.DBLP, 0.25, 42)
	if err != nil {
		t.Fatal(err)
	}
	batches := streamBatches(records)
	union := append(append(append([]cem.Record(nil), batches[0]...), batches[1]...), batches[2]...)
	pipe, err := cem.NewPipeline(cem.WithScheme(cem.SchemeSMP))
	if err != nil {
		t.Fatal(err)
	}
	prior, err := pipe.Run(context.Background(), batches[0])
	if err != nil {
		t.Fatal(err)
	}
	mid, err := pipe.Update(context.Background(), prior, batches[1])
	if err != nil {
		t.Fatal(err)
	}
	if !mid.WarmStarted {
		t.Error("update on a Run-produced prior did not warm-start")
	}
	final, err := pipe.Update(context.Background(), mid, batches[2])
	if err != nil {
		t.Fatal(err)
	}
	cold, err := pipe.Run(context.Background(), union)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := renderMatches(final.Result), renderMatches(cold.Result); got != want {
		t.Errorf("Run-seeded incremental chain diverges from cold run: %s", firstDiff(got, want))
	}
}
