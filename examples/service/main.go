// Service: a minimal online matching service built from the public API
// alone — the pattern behind cmd/emserve, boiled down to ~100 lines.
//
// Three ideas compose it:
//
//  1. One writer goroutine owns Pipeline.Update. Arriving batches are
//     applied strictly serially; incremental ingestion (delta blocking +
//     warm-started matching) makes each commit proportional to the
//     delta, not the corpus.
//  2. Readers never lock. Every committed *cem.PipelineResult is
//     published through an atomic.Pointer swap, so a GET observes either
//     the state before a commit or after it — snapshot isolation.
//  3. Shutdown is a drain: close the ingest channel, let the writer
//     finish the queue, and the last snapshot is the final answer.
//
// The demo drives itself: it starts the server on an ephemeral port,
// streams a corpus in while concurrent readers poll, then drains and
// verifies the served state equals a cold run. Run with:
//
//	go run ./examples/service
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
)

import cem "repro"

// server is the whole service: a pipeline, the last committed snapshot,
// and a serially-consumed ingest queue.
type server struct {
	pipe    *cem.Pipeline
	current atomic.Pointer[cem.PipelineResult] // nil until the first commit
	ingest  chan []cem.Record
	done    sync.WaitGroup
}

func newServer(pipe *cem.Pipeline) *server {
	s := &server{pipe: pipe, ingest: make(chan []cem.Record, 16)}
	s.done.Add(1)
	go s.writer()
	return s
}

// writer is idea 1: the only goroutine that touches Update.
func (s *server) writer() {
	defer s.done.Done()
	for batch := range s.ingest {
		res, err := s.pipe.Update(context.Background(), s.current.Load(), batch)
		if err != nil {
			log.Printf("batch dropped: %v", err)
			continue
		}
		s.current.Store(res) // idea 2: publish by pointer swap
	}
}

// drain is idea 3: stop accepting, finish the queue, return the final state.
func (s *server) drain() *cem.PipelineResult {
	close(s.ingest)
	s.done.Wait()
	return s.current.Load()
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.Method == http.MethodPost && r.URL.Path == "/records":
		_, recs, err := cem.ReadRecords(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		s.ingest <- recs
		w.WriteHeader(http.StatusAccepted)
	case r.Method == http.MethodGet && r.URL.Path == "/stats":
		type stats struct {
			Records, Matches int
			Warm             bool
			Updates          int64
		}
		st := stats{Updates: s.pipe.Stats().Updates}
		if res := s.current.Load(); res != nil {
			st.Records, st.Matches, st.Warm = res.Records, res.Matches.Len(), res.WarmStarted
		}
		json.NewEncoder(w).Encode(st)
	default:
		http.NotFound(w, r)
	}
}

func main() {
	records, err := cem.GenerateRecords(cem.DBLP, 0.25, 42)
	if err != nil {
		log.Fatal(err)
	}
	pipe, err := cem.NewPipeline(cem.WithScheme(cem.SchemeSMP), cem.WithDatasetName("dblp-service"))
	if err != nil {
		log.Fatal(err)
	}
	srv := newServer(pipe)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv}
	go httpSrv.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving on %s\n", base)

	// A writer client streams the corpus in five batches while a reader
	// client polls /stats — reads proceed mid-update, unblocked.
	readerDone := make(chan int)
	go func() {
		polls := 0
		for {
			resp, err := http.Get(base + "/stats")
			if err != nil {
				break // server closed: demo over
			}
			var st struct{ Records, Matches int }
			json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			polls++
			if st.Records == len(records) {
				readerDone <- polls
				return
			}
		}
		readerDone <- polls
	}()
	n, lo := len(records), 0
	for i, hi := range []int{n * 6 / 10, n * 7 / 10, n * 8 / 10, n * 9 / 10, n} {
		var body bytes.Buffer
		if err := cem.WriteRecords(&body, fmt.Sprintf("batch-%d", i+1), records[lo:hi]); err != nil {
			log.Fatal(err)
		}
		resp, err := http.Post(base+"/records", "text/tab-separated-values", &body)
		if err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		lo = hi
	}

	// Drain and verify: the served state must equal a cold run over the
	// same arrival order — the incremental differential guarantee.
	polls := <-readerDone
	final := srv.drain()
	httpSrv.Close()
	cold, err := pipe.Run(context.Background(), records)
	if err != nil {
		log.Fatal(err)
	}
	same := final.Matches.Len() == cold.Matches.Len()
	for _, p := range cold.Matches.Sorted() {
		if !final.Matches.Has(p) {
			same = false
			break
		}
	}
	fmt.Printf("drained: %d records, %d matches after %d updates (reader polled %d times mid-stream)\n",
		final.Records, final.Matches.Len(), pipe.Stats().Updates, polls)
	fmt.Printf("identical to the cold run: %v\n", same)
}
