// Pipeline: from raw records to matches in one call — no datasets, no
// covers, no internal packages. Records (a name, an optional relational
// group, an optional gold label) go in; the pipeline blocks them into
// canopy neighborhoods on a sharded worker pool, runs a message-passing
// scheme with a registered matcher, and returns matches plus pairwise
// and B-cubed metrics.
//
// Run with:
//
//	go run ./examples/pipeline
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"

	cem "repro"
)

func main() {
	// Raw records: here synthesized in the paper's DBLP regime, but any
	// []cem.Record works — cem.BasicRecord carries a key (the string to
	// match on), a group (records of one group are coauthors) and a gold
	// label (-1 when unknown).
	records, err := cem.GenerateRecords(cem.DBLP, 0.3, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("input:  %d raw records\n", len(records))

	// The pipeline bundles every stage: blocking (sharded, output
	// identical to serial), total-cover construction, scheme execution
	// through the Runner, and evaluation.
	pipe, err := cem.NewPipeline(
		cem.WithDatasetName("pipeline-demo"),
		cem.WithMatcher(cem.MatcherMLN),
		cem.WithScheme(cem.SchemeSMP),
		cem.WithShards(runtime.NumCPU()),
		cem.WithRunnerOptions(cem.WithParallelism(runtime.NumCPU())),
	)
	if err != nil {
		log.Fatal(err)
	}
	res, err := pipe.Run(context.Background(), records)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("cover:  %s\n", res.Experiment.Cover.ComputeStats())
	fmt.Printf("stages: blocking %v, matching %v\n", res.BlockingTime, res.MatchingTime)
	fmt.Printf("output: %d matches\n\n", res.Matches.Len())
	fmt.Printf("pairwise  %v\n", res.Report.PRF)
	fmt.Printf("B-cubed   %v\n", *res.BCubed)

	// A handcrafted, unlabeled corpus works the same way (the pipeline
	// just skips the metrics): two papers by the same trio, once with
	// full names and once abbreviated. No single pair is matchable on
	// its own — only the jointly-supporting clique of all three pairs
	// is, which is exactly what maximal message passing recovers
	// (Figure 2 of the paper).
	tiny := []cem.Record{
		cem.BasicRecord{Key: "Vibhor Rastogi", Group: 1, Gold: -1},
		cem.BasicRecord{Key: "Nilesh Dalvi", Group: 1, Gold: -1},
		cem.BasicRecord{Key: "Minos Garofalakis", Group: 1, Gold: -1},
		cem.BasicRecord{Key: "V. Rastogi", Group: 2, Gold: -1},
		cem.BasicRecord{Key: "N. Dalvi", Group: 2, Gold: -1},
		cem.BasicRecord{Key: "M. Garofalakis", Group: 2, Gold: -1},
	}
	mmp, err := cem.NewPipeline(cem.WithScheme(cem.SchemeMMP))
	if err != nil {
		log.Fatal(err)
	}
	tinyRes, err := mmp.Run(context.Background(), tiny)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntiny corpus under MMP: %d records -> %d matches (labeled=%v)\n",
		tinyRes.Records, tinyRes.Matches.Len(), tinyRes.Labeled)
	for _, p := range tinyRes.Matches.Sorted() {
		fmt.Printf("  %q == %q\n", tiny[p.A].RecordKey(), tiny[p.B].RecordKey())
	}
}
