// Checkpoint: fault-tolerant matching on the sharded backend. The run
// partitions the cover across shards that exchange evidence only as
// serialized delta batches (the paper's distributed map/reduce rounds,
// §6.3), and persists a checkpoint after every round. We then simulate
// a worker loss — the run is killed mid-flight via context cancellation
// — and resume it from the on-disk trail: the resumed run lands on the
// exact match set an uninterrupted run produces, because rounds are
// deterministic and the trail replays their evidence deltas.
//
// Only the public cem and match packages are used. Run with:
//
//	go run ./examples/checkpoint
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"

	cem "repro"
	"repro/match"
)

func main() {
	dir, err := os.MkdirTemp("", "cem-checkpoint-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	exp, err := cem.New(cem.NewDataset(cem.HEPTH, 0.25, 42))
	if err != nil {
		log.Fatal(err)
	}

	// Reference: an uninterrupted run on the default pool backend.
	plain, err := exp.Runner(cem.MatcherMLN)
	if err != nil {
		log.Fatal(err)
	}
	want, err := plain.Run(context.Background(), cem.SchemeSMP)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reference run:   %d matches\n", want.Matches.Len())

	// The same run, sharded 4 ways and checkpointed — killed as soon as
	// the second round starts reducing.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	killed, err := exp.Runner(cem.MatcherMLN,
		cem.WithShardCount(4),
		cem.WithCheckpointDir(dir),
		cem.WithProgress(func(e match.ProgressEvent) {
			if e.Round == 2 {
				cancel() // simulated worker loss
			}
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := killed.Run(ctx, cem.SchemeSMP); errors.Is(err, context.Canceled) {
		trail, _ := filepath.Glob(filepath.Join(dir, "round-*.ckpt"))
		fmt.Printf("killed mid-run:  %d round checkpoint(s) on disk\n", len(trail))
	} else if err != nil {
		log.Fatal(err)
	} else {
		fmt.Println("run finished before the kill landed (tiny corpus) — resuming anyway")
	}

	// Resume from the trail. The restart replays the persisted evidence
	// deltas and re-executes only the unfinished rounds.
	resumer, err := exp.Runner(cem.MatcherMLN,
		cem.WithShardCount(4),
		cem.WithCheckpointDir(dir),
	)
	if err != nil {
		log.Fatal(err)
	}
	got, err := resumer.Resume(context.Background(), cem.SchemeSMP)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resumed run:     %d matches\n", got.Matches.Len())

	if got.Matches.Equal(want.Matches) {
		fmt.Println("resumed output is identical to the uninterrupted run ✓")
	} else {
		log.Fatal("resumed output diverged — this should be impossible")
	}
}
