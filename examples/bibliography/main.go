// Bibliography: deduplicate a hand-assembled bibliography — the paper's
// Example 1 scenario — using the public API with a custom dataset rather
// than a generated one. Shows how abbreviated author references that no
// string measure can safely match ("V. Rastogi" vs "Vibhor Rastogi") are
// resolved collectively through coauthor evidence.
//
// Run with:
//
//	go run ./examples/bibliography
package main

import (
	"context"
	"fmt"
	"log"

	cem "repro"
	"repro/match"
)

// addPaper appends a paper with its author references; each author is a
// (name-as-printed, true-author-id) pair — the ids serve as ground truth.
func addPaper(d *match.Dataset, title string, year int, authors ...[2]interface{}) {
	p := match.Paper{Title: title, Year: year}
	pid := int32(len(d.Papers))
	for _, a := range authors {
		id := int32(len(d.Refs))
		d.Refs = append(d.Refs, match.Reference{
			Name:  a[0].(string),
			Paper: pid,
			True:  int32(a[1].(int)),
		})
		p.Refs = append(p.Refs, id)
	}
	d.Papers = append(d.Papers, p)
}

func main() {
	// A small cross-database bibliography: one source spells names out,
	// the other abbreviates. Authors: 0 = Vibhor Rastogi, 1 = Nilesh
	// Dalvi, 2 = Minos Garofalakis, 3 = Pedro Domingos, 4 = Parag Singla,
	// 5 = Vikram Rastogi (a DIFFERENT author sharing initial+surname!).
	d := &match.Dataset{Name: "example-1"}
	addPaper(d, "large scale collective entity matching", 2011,
		[2]interface{}{"Vibhor Rastogi", 0},
		[2]interface{}{"Nilesh Dalvi", 1},
		[2]interface{}{"Minos Garofalakis", 2})
	addPaper(d, "big data integration", 2012,
		[2]interface{}{"V. Rastogi", 0},
		[2]interface{}{"N. Dalvi", 1},
		[2]interface{}{"M. Garofalakis", 2})
	addPaper(d, "entity resolution with markov logic", 2006,
		[2]interface{}{"Parag Singla", 4},
		[2]interface{}{"Pedro Domingos", 3})
	addPaper(d, "lifted inference", 2008,
		[2]interface{}{"P. Singla", 4},
		[2]interface{}{"P. Domingos", 3})
	// The trap: Vikram Rastogi also publishes, with different coauthors.
	addPaper(d, "circuit design methods", 2009,
		[2]interface{}{"V. Rastogi", 5},
		[2]interface{}{"Q. Unrelated", 6})

	if err := d.Validate(); err != nil {
		log.Fatal(err)
	}
	exp, err := cem.New(d)
	if err != nil {
		log.Fatal(err)
	}
	runner, err := exp.Runner(cem.MatcherMLN)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// No single pair here is decidable on its own: every abbreviated pair
	// needs coauthor support, and the supports need each other — the
	// "chicken and egg" of §5.2. NO-MP and SMP find nothing; MMP's
	// maximal messages assemble the mutually-supporting clique.
	for _, s := range []cem.Scheme{cem.SchemeNoMP, cem.SchemeSMP, cem.SchemeMMP} {
		res, err := runner.Run(ctx, s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5s found %d matches\n", s, res.Matches.Len())
	}

	res, err := runner.Run(ctx, cem.SchemeMMP)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmatches found by MMP over the MLN matcher:")
	for _, p := range res.Matches.Sorted() {
		a, b := d.Refs[p.A], d.Refs[p.B]
		verdict := "correct"
		if a.True != b.True {
			verdict = "WRONG"
		}
		fmt.Printf("  %-18q (paper %d)  ==  %-18q (paper %d)   [%s]\n",
			a.Name, a.Paper, b.Name, b.Paper, verdict)
	}
	fmt.Printf("\n%v\n", exp.Evaluate(res))
	fmt.Println("\nnote how the second \"V. Rastogi\" (the circuit designer) stays")
	fmt.Println("separate: no matching coauthors, so collective evidence never links it.")
}
