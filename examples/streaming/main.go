// Streaming: incremental matching over a live record stream. Records
// arrive in batches; instead of re-blocking and re-matching the whole
// corpus on every arrival, Pipeline.Update ingests each batch into the
// mutable blocking index (only the new records are scored against the
// q-gram structures) and warm-starts the matcher from the previous
// result — prior matches become committed evidence, and only the
// neighborhoods the delta touched are re-activated (the paper's
// Neighbor(·) re-activation applied to ingestion).
//
// The punchline is printed at the end: the final incremental state is
// byte-identical to a cold run over everything, at a fraction of the
// matcher calls per batch.
//
// Only the public cem package is used. Run with:
//
//	go run ./examples/streaming
package main

import (
	"context"
	"fmt"
	"log"
)

import cem "repro"

func main() {
	// A synthetic DBLP-like corpus, played back as one base load plus a
	// trickle of small batches — the shape of a live ingestion feed.
	records, err := cem.GenerateRecords(cem.DBLP, 0.25, 42)
	if err != nil {
		log.Fatal(err)
	}
	n := len(records)
	cuts := []int{n * 6 / 10, n * 7 / 10, n * 8 / 10, n * 9 / 10, n}

	pipe, err := cem.NewPipeline(
		cem.WithScheme(cem.SchemeSMP),
		cem.WithDatasetName("dblp-stream"),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Cold reference: everything at once.
	cold, err := pipe.Run(context.Background(), records)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cold run over %d records: %d matches, %d matcher calls\n\n",
		n, cold.Matches.Len(), cold.Stats.MatcherCalls)

	// The stream: Update folds each batch into the previous state.
	var state *cem.PipelineResult
	lo := 0
	for i, hi := range cuts {
		batch := records[lo:hi]
		state, err = pipe.Update(context.Background(), state, batch)
		if err != nil {
			log.Fatal(err)
		}
		mode := "cold"
		switch {
		case state.WarmStarted:
			mode = "warm"
		case state.ForcedRerun:
			mode = "full re-run"
		}
		fmt.Printf("batch %d: +%3d records → %4d matches  (%4s, %3d matcher calls, blocking %v)\n",
			i+1, len(batch), state.Matches.Len(), mode, state.Stats.MatcherCalls, state.BlockingTime)
		lo = hi
	}

	fmt.Println()
	if state.Matches.Equal(cold.Matches) {
		fmt.Println("incremental state is identical to the cold run ✓")
	} else {
		log.Fatal("incremental state diverged from the cold run — this should be impossible")
	}
	if state.Report != nil {
		fmt.Printf("final quality: %v\n", *state.Report)
	}
}
