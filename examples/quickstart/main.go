// Quickstart: generate a small DBLP-like bibliography, scale the MLN
// collective matcher with maximal message passing, and print the
// precision/recall against ground truth. Shows the Runner API: a
// context-aware, concurrent executor built with functional options.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"

	cem "repro"
)

func main() {
	// A workstation-sized corpus: full author names with typo noise,
	// exact ground truth by construction.
	dataset := cem.NewDataset(cem.DBLP, 0.5, 7)
	fmt.Printf("dataset: %s\n", dataset.ComputeStats())

	// New builds the total cover (canopies + coauthor context), the
	// candidate pairs, and grounds the built-in matchers.
	exp, err := cem.New(dataset)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cover:   %s\n", exp.Cover.ComputeStats())
	fmt.Printf("pairs:   %d matching decisions\n\n", len(exp.Candidates))

	// A Runner binds one registered matcher ("mln" here; see
	// cem.Matchers() for all) to execution options. Independent
	// neighborhoods are evaluated on all cores; the output is identical
	// to a serial run (consistency, Theorems 2 and 4).
	runner, err := exp.Runner(cem.MatcherMLN,
		cem.WithParallelism(runtime.NumCPU()))
	if err != nil {
		log.Fatal(err)
	}

	// Run the three schemes of the paper and compare.
	ctx := context.Background()
	for _, scheme := range []cem.Scheme{cem.SchemeNoMP, cem.SchemeSMP, cem.SchemeMMP} {
		res, err := runner.Run(ctx, scheme)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s %v\n", scheme, exp.Evaluate(res))
	}

	// The UB oracle bounds what the full (infeasible at scale) run of the
	// matcher could achieve.
	ub, err := runner.Run(ctx, cem.SchemeUB)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-6s %v\n", "UB", exp.Evaluate(ub))
}
