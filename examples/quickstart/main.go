// Quickstart: generate a small DBLP-like bibliography, scale the MLN
// collective matcher with maximal message passing, and print the
// precision/recall against ground truth.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	cem "repro"
)

func main() {
	// A workstation-sized corpus: full author names with typo noise,
	// exact ground truth by construction.
	dataset := cem.NewDataset(cem.DBLP, 0.5, 7)
	fmt.Printf("dataset: %s\n", dataset.ComputeStats())

	// Setup builds the total cover (canopies + coauthor context), the
	// candidate pairs, and grounds both matchers.
	exp, err := cem.Setup(dataset, cem.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cover:   %s\n", exp.Cover.ComputeStats())
	fmt.Printf("pairs:   %d matching decisions\n\n", len(exp.Candidates))

	// Run the three schemes of the paper and compare.
	for _, scheme := range []cem.Scheme{cem.SchemeNoMP, cem.SchemeSMP, cem.SchemeMMP} {
		res, err := exp.Run(scheme, cem.MatcherMLN)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6s %v\n", scheme, exp.Evaluate(res))
	}

	// The UB oracle bounds what the full (infeasible at scale) run of the
	// matcher could achieve.
	ub, err := exp.Run(cem.SchemeUB, cem.MatcherMLN)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-6s %v\n", "UB", exp.Evaluate(ub))
}
