// Customrules: plug a custom Dedupalog*-style rule program into the
// framework (the RULES matcher of Appendix B/C) and compare it, under
// SMP, against the paper's default program. Demonstrates that ANY
// well-behaved Type-I matcher scales with simple message passing — the
// "Generic" property of §1 — and that SMP reproduces the FULL run
// exactly for this matcher family. Uses only the public cem and match
// packages: rule programs are injected with cem.WithRules.
//
// Run with:
//
//	go run ./examples/customrules
package main

import (
	"context"
	"fmt"
	"log"

	cem "repro"
	"repro/match"
)

func main() {
	dataset := cem.NewDataset(cem.HEPTH, 0.4, 13)
	fmt.Printf("dataset: %s\n\n", dataset.ComputeStats())

	// Rule programs to compare. Each rule reads: a pair at exactly this
	// similarity level matches once at least MinCoauthorMatches coauthor
	// pairs are matched.
	programs := []struct {
		name  string
		rules []match.Rule
	}{
		{"paper (3/2+1co/1+2co)", nil}, // nil = the paper's Appendix B program
		{"strict (3+1co/2+2co)", []match.Rule{
			{Level: match.LevelStrong, MinCoauthorMatches: 1},
			{Level: match.LevelMedium, MinCoauthorMatches: 2},
		}},
		{"lenient (3/2/1+1co)", []match.Rule{
			{Level: match.LevelStrong, MinCoauthorMatches: 0},
			{Level: match.LevelMedium, MinCoauthorMatches: 0},
			{Level: match.LevelWeak, MinCoauthorMatches: 1},
		}},
	}

	ctx := context.Background()
	for _, prog := range programs {
		var opts []cem.Option
		if prog.rules != nil {
			opts = append(opts, cem.WithRules(prog.rules))
		}
		exp, err := cem.New(dataset, opts...)
		if err != nil {
			log.Fatal(err)
		}
		runner, err := exp.Runner(cem.MatcherRules)
		if err != nil {
			log.Fatal(err)
		}
		smp, err := runner.Run(ctx, cem.SchemeSMP)
		if err != nil {
			log.Fatal(err)
		}
		full, err := runner.Run(ctx, cem.SchemeFull)
		if err != nil {
			log.Fatal(err)
		}
		rep := exp.EvaluateAgainst(smp, full.Matches)
		fmt.Printf("%-22s SMP: P=%.3f R=%.3f F1=%.3f | equals FULL: %v\n",
			prog.name, rep.PRF.Precision, rep.PRF.Recall, rep.PRF.F1,
			smp.Matches.Equal(full.Matches))
	}

	fmt.Println("\nstricter rules trade recall for precision; in every case SMP")
	fmt.Println("reproduces the FULL run — the framework is generic over the rule program.")
}
