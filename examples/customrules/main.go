// Customrules: plug a custom Dedupalog*-style rule program into the
// framework (the RULES matcher of Appendix B/C) and compare it, under
// SMP, against the paper's default program. Demonstrates that ANY
// well-behaved Type-I matcher scales with simple message passing — the
// "Generic" property of §1 — and that SMP reproduces the FULL run
// exactly for this matcher family.
//
// Run with:
//
//	go run ./examples/customrules
package main

import (
	"fmt"
	"log"

	cem "repro"
	"repro/internal/core"
	"repro/internal/rules"
	"repro/internal/similarity"
)

func main() {
	dataset := cem.NewDataset(cem.HEPTH, 0.4, 13)
	fmt.Printf("dataset: %s\n\n", dataset.ComputeStats())

	exp, err := cem.Setup(dataset, cem.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// Rule programs to compare. Each rule reads: a pair at exactly this
	// similarity level matches once at least MinCoauthorMatches coauthor
	// pairs are matched.
	programs := []struct {
		name  string
		rules []rules.Rule
	}{
		{"paper (3/2+1co/1+2co)", rules.PaperRules()},
		{"strict (3+1co/2+2co)", []rules.Rule{
			{Level: similarity.LevelStrong, MinCoauthorMatches: 1},
			{Level: similarity.LevelMedium, MinCoauthorMatches: 2},
		}},
		{"lenient (3/2/1+1co)", []rules.Rule{
			{Level: similarity.LevelStrong, MinCoauthorMatches: 0},
			{Level: similarity.LevelMedium, MinCoauthorMatches: 0},
			{Level: similarity.LevelWeak, MinCoauthorMatches: 1},
		}},
	}

	cands := make([]rules.Candidate, len(exp.Candidates))
	for i, c := range exp.Candidates {
		cands[i] = rules.Candidate{Pair: c.Pair, Level: c.Level}
	}

	for _, prog := range programs {
		matcher, err := rules.New(exp.Dataset, cands, prog.rules)
		if err != nil {
			log.Fatal(err)
		}
		cfg := core.Config{
			Cover:    exp.Cover,
			Matcher:  matcher,
			Relation: exp.Dataset.Coauthor(),
		}
		smp := core.SMP(cfg)
		full := core.Full(cfg)
		rep := exp.EvaluateAgainst(smp, full.Matches)
		fmt.Printf("%-22s SMP: P=%.3f R=%.3f F1=%.3f | equals FULL: %v\n",
			prog.name, rep.PRF.Precision, rep.PRF.Recall, rep.PRF.F1,
			smp.Matches.Equal(full.Matches))
	}

	fmt.Println("\nstricter rules trade recall for precision; in every case SMP")
	fmt.Println("reproduces the FULL run — the framework is generic over the rule program.")
}
