// Distributed: multi-process matching on the sharded-net backend, with
// a worker killed mid-run. A coordinator owns the central reduce; K
// workers each rebuild the round plan from their own configuration and
// evaluate partition assignments delivered over the wire codec. The
// coordinator supervises the fleet — heartbeats, round deadlines,
// bounded retries — and when a worker dies it reassigns that worker's
// partitions to the survivors. Because rounds are deterministic and a
// round commits only when every partition is accounted exactly once,
// the interrupted fleet lands on the exact match set of the
// uninterrupted single-process run; what the failure cost shows up only
// in the resilience counters.
//
// The kill here is simulated deterministically with the internal
// fault-injection harness (the worker's stream is severed right after
// it receives round 2's assignment — the SIGKILL-between-heartbeats
// shape). scripts/chaos-smoke.sh runs the same scenario with real
// emworker OS processes and a real SIGKILL. Run with:
//
//	go run ./examples/distributed
package main

import (
	"context"
	"fmt"
	"log"

	cem "repro"
	"repro/internal/core"
	emnet "repro/internal/net"
	"repro/internal/net/faultnet"
)

func main() {
	exp, err := cem.New(cem.NewDataset(cem.HEPTH, 0.25, 42))
	if err != nil {
		log.Fatal(err)
	}
	runner, err := exp.Runner(cem.MatcherMLN)
	if err != nil {
		log.Fatal(err)
	}

	// Reference: an uninterrupted run on the default pool backend.
	want, err := runner.Run(context.Background(), cem.SchemeSMP)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single-process reference: %d matches\n", want.Matches.Len())

	// The same experiment on a 3-worker fleet, with worker 1 killed the
	// moment it receives its round-2 assignment and never allowed back.
	cfg := core.Config{
		Cover:    exp.Cover,
		Matcher:  runner.Matcher(),
		Relation: exp.Dataset.Coauthor(),
	}
	inj := faultnet.New(faultnet.Plan{
		Seed:        1,
		KillAtRound: map[int]int{1: 2},
		Permadead:   true,
	})
	backend := &emnet.Backend{Workers: 3, Opts: emnet.Options{
		Spawn: inj.Spawner(emnet.LocalSpawner(cfg, "SMP", emnet.WorkerOptions{Wrap: inj.WrapWorker})),
	}}

	distRunner, err := exp.Runner(cem.MatcherMLN, cem.WithBackend(backend))
	if err != nil {
		log.Fatal(err)
	}
	got, err := distRunner.Run(context.Background(), cem.SchemeSMP)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3-worker fleet, one killed at round 2: %d matches\n", got.Matches.Len())
	fmt.Printf("worker 1 killed: %v; partitions reassigned: %d; late batches dropped: %d\n",
		inj.Killed(1), got.Stats.Reassignments, got.Stats.LateBatchesDropped)

	if !got.Matches.Equal(want.Matches) {
		log.Fatal("outputs diverge — the consistency theorems say this cannot happen")
	}
	fmt.Println("match sets identical: losing a worker cost throughput, not correctness")
}
