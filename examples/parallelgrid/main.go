// Parallelgrid: run the framework on the simulated grid of §6.3 — a
// rounds-based MapReduce-style executor over simulated machines — and
// reproduce the Table 1 observation that speedup stays well below the
// machine count because of assignment skew and per-round overhead.
// Contrast with cem.WithParallelism, which parallelizes for real on
// shared memory; the grid additionally models the distributed clock.
//
// Run with:
//
//	go run ./examples/parallelgrid
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	cem "repro"
	"repro/internal/grid"
)

func main() {
	// A larger corpus in the DBLP-BIG regime (§6.3 used 4.6M references
	// on 30 machines; scale up the factor below to stress your machine).
	dataset := cem.NewDataset(cem.DBLPBig, 0.15, 9)
	fmt.Printf("dataset: %s\n", dataset.ComputeStats())

	exp, err := cem.New(dataset)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cover:   %s\n\n", exp.Cover.ComputeStats())

	runner, err := exp.Runner(cem.MatcherMLN)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// Simulated service times follow the Alchemy-like quadratic cost
	// model (see EXPERIMENTS.md): 1ms per active decision squared. Our
	// exact solver finishes jobs in microseconds, which would leave the
	// simulated clocks dominated by scheduling overhead.
	model := func(active int) time.Duration {
		return time.Duration(active*active) * time.Millisecond
	}
	for _, machines := range []int{1, 5, 30} {
		gcfg := grid.Config{
			Machines:      machines,
			RoundOverhead: 200 * time.Millisecond,
			Seed:          1,
			ServiceModel:  model,
		}
		res, err := runner.RunGrid(ctx, cem.SchemeSMP, gcfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("machines=%-3d rounds=%d  grid=%-12v single=%-12v speedup=%.1f\n",
			machines, res.Rounds,
			res.SimulatedGridTime.Round(time.Millisecond),
			res.SimulatedSingleTime.Round(time.Millisecond),
			res.Speedup)
	}

	fmt.Println("\nspeedup < machines: random assignment skews per-machine load and")
	fmt.Println("every round pays a scheduling overhead — the Table 1 mechanism.")

	// The parallel run is consistent with the sequential one.
	seq, err := runner.Run(ctx, cem.SchemeSMP)
	if err != nil {
		log.Fatal(err)
	}
	par, err := runner.RunGrid(ctx, cem.SchemeSMP,
		grid.Config{Machines: 30, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nconsistency: sequential SMP %d matches, grid SMP %d matches, equal=%v\n",
		seq.Matches.Len(), par.Matches.Len(), seq.Matches.Equal(par.Matches))
}
