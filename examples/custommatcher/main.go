// Custommatcher: bring your own black-box matcher. A third-party
// collective matcher — written against ONLY the public cem and match
// packages, no repro/internal imports — is registered under a name and
// then driven through every applicable scheme by the same engine that
// runs the built-ins. This is the paper's "Generic" property (§1) made
// concrete: the framework scales any deterministic, well-behaved
// E(E, V+, V−) black box.
//
// Run with:
//
//	go run ./examples/custommatcher
package main

import (
	"context"
	"fmt"
	"log"
	"runtime"

	cem "repro"
	"repro/match"
)

// coMatcher is a hand-rolled Type-I collective matcher: a pair matches
// when its name similarity is strong, or when enough of its coauthor
// partner pairs are already matched (medium needs 1, weak needs 2).
// Evidence makes it match MORE (monotone) and rerunning it on its own
// output changes nothing (idempotent) — so the framework's soundness
// and consistency guarantees apply.
type coMatcher struct {
	level    map[match.Pair]match.Level
	partners map[match.Pair][]match.Pair // aligned coauthor pairs
}

// newCoMatcher grounds the matcher: it keeps each candidate's level and
// precomputes, per candidate pair, the candidate pairs formed by the
// coauthors of its two references.
func newCoMatcher(mc cem.MatcherContext) (match.Matcher, error) {
	m := &coMatcher{
		level:    make(map[match.Pair]match.Level, len(mc.Candidates)),
		partners: make(map[match.Pair][]match.Pair, len(mc.Candidates)),
	}
	for _, c := range mc.Candidates {
		m.level[c.Pair] = c.Level
	}
	co := mc.Dataset.Coauthor()
	for _, c := range mc.Candidates {
		for _, a := range co.Neighbors(c.Pair.A) {
			for _, b := range co.Neighbors(c.Pair.B) {
				if a == b {
					continue
				}
				p := match.MakePair(a, b)
				if _, ok := m.level[p]; ok {
					m.partners[c.Pair] = append(m.partners[c.Pair], p)
				}
			}
		}
	}
	return m, nil
}

// Candidates implements match.Matcher.
func (m *coMatcher) Candidates(entities []match.EntityID) []match.Pair {
	in := make(map[match.EntityID]bool, len(entities))
	for _, e := range entities {
		in[e] = true
	}
	var out []match.Pair
	for p := range m.level {
		if in[p.A] && in[p.B] {
			out = append(out, p)
		}
	}
	return out
}

// Match implements match.Matcher: monotone rule application to fixpoint
// over the in-scope candidates, seeded by the positive evidence.
func (m *coMatcher) Match(entities []match.EntityID, pos, neg match.PairSet) match.PairSet {
	scope := m.Candidates(entities)
	out := match.NewPairSet()
	for _, p := range scope {
		if pos.Has(p) {
			out.Add(p)
		}
	}
	for changed := true; changed; {
		changed = false
		for _, p := range scope {
			if out.Has(p) || neg.Has(p) {
				continue
			}
			support := 0
			for _, q := range m.partners[p] {
				if out.Has(q) || pos.Has(q) {
					support++
				}
			}
			need := map[match.Level]int{
				match.LevelStrong: 0, match.LevelMedium: 1, match.LevelWeak: 2,
			}[m.level[p]]
			if support >= need {
				out.Add(p)
				changed = true
			}
		}
	}
	return out
}

func init() {
	// Registration is global and happens once, typically in the
	// matcher's own package init.
	cem.RegisterMatcher("coauthor-support", newCoMatcher)
}

func main() {
	dataset := cem.NewDataset(cem.HEPTH, 0.4, 13)
	fmt.Printf("dataset:  %s\n", dataset.ComputeStats())
	fmt.Printf("matchers: %v\n\n", cem.Matchers())

	exp, err := cem.New(dataset)
	if err != nil {
		log.Fatal(err)
	}
	runner, err := exp.Runner("coauthor-support",
		cem.WithParallelism(runtime.NumCPU()))
	if err != nil {
		log.Fatal(err)
	}

	// The engine treats the custom matcher exactly like the built-ins:
	// NO-MP, SMP and FULL all apply (MMP/UB would additionally need the
	// match.Probabilistic / match.ConditionalDecider extensions).
	ctx := context.Background()
	var full *cem.Result
	for _, s := range []cem.Scheme{cem.SchemeNoMP, cem.SchemeSMP, cem.SchemeFull} {
		res, err := runner.Run(ctx, s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5s %v\n", s, exp.Evaluate(res))
		full = res
	}

	// The Appendix C result holds for any well-behaved Type-I matcher:
	// SMP over a total cover reproduces the FULL run exactly.
	smp, err := runner.Run(ctx, cem.SchemeSMP)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSMP equals FULL: %v\n", smp.Matches.Equal(full.Matches))
}
