package cem

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/bib"
	"repro/internal/canopy"
	"repro/internal/core"
	"repro/internal/wire"
	"repro/match"
)

// Store-backed state: SaveState persists a completed pipeline result
// into a Store (evidence is already there, mirrored round by round when
// the runner carries the store; SaveState adds the snapshot blob and
// the blocking postings blob), and Pipeline.Reopen restores the result
// from the store without running the matcher at all — the
// restart-without-replay path a disk-backed service uses.

// stateBlobName is the snapshot/postings blob both sides agree on.
const stateBlobName = "latest"

// SaveState persists res into s as the store's current state: a
// snapshot blob (a wire.Checkpoint carrying the run's provenance, its
// pre-closure evidence, outstanding maximal messages, and seq as the
// commit sequence number) plus — when res carries streaming blocking
// state — a postings blob with the serialized delta index. Evidence
// segments are the runner's business; SaveState only writes blobs, so
// it is cheap relative to a run and safe to call once per commit.
func SaveState(s match.Store, res *PipelineResult, seq int) error {
	if s == nil {
		return fmt.Errorf("cem: SaveState needs a store")
	}
	if res == nil || res.Result == nil || res.Experiment == nil {
		return fmt.Errorf("cem: SaveState needs a completed pipeline result")
	}
	if seq < 0 {
		return fmt.Errorf("cem: SaveState sequence %d is negative", seq)
	}
	snap, err := res.Experiment.Snapshot(res.Result)
	if err != nil {
		return err
	}
	ck := &wire.Checkpoint{
		Scheme:        res.Scheme,
		Matcher:       res.Matcher,
		Neighborhoods: snap.Neighborhoods,
		Entities:      snap.Entities,
		Round:         seq,
		Done:          true,
		Delta:         make([]uint64, len(snap.Evidence)),
		Visits:        make([]int, snap.Neighborhoods),
	}
	for i, k := range snap.Evidence {
		ck.Delta[i] = uint64(k)
	}
	for _, msg := range snap.Messages {
		g := make([]uint64, len(msg))
		for i, p := range msg {
			g[i] = uint64(p.Key())
		}
		ck.Messages = append(ck.Messages, g)
	}
	data, err := ck.Marshal(wire.Binary)
	if err != nil {
		return fmt.Errorf("cem: encoding state snapshot: %w", err)
	}
	if err := s.SaveBlob(match.KindSnapshot, stateBlobName, data); err != nil {
		return err
	}
	if res.index != nil {
		postings, err := res.index.Save()
		if err != nil {
			return err
		}
		if err := s.SaveBlob(match.KindPostings, stateBlobName, postings); err != nil {
			return err
		}
	}
	return s.Flush()
}

// StateSeq reads the commit sequence number of the state snapshot
// SaveState last wrote into s, without rebuilding anything. A store with
// no saved snapshot returns match.ErrBlobNotFound (wrapped) — callers
// use this to decide how many journaled batches a Reopen would cover.
func StateSeq(s match.Store) (int, error) {
	if s == nil {
		return 0, fmt.Errorf("cem: StateSeq needs a store")
	}
	data, err := s.OpenBlob(match.KindSnapshot, stateBlobName)
	if err != nil {
		return 0, fmt.Errorf("cem: reading state snapshot: %w", err)
	}
	ck, err := wire.UnmarshalCheckpoint(data)
	if err != nil {
		return 0, fmt.Errorf("cem: state snapshot: %w", err)
	}
	return ck.Round, nil
}

// Reopen restores the pipeline state SaveState persisted into s,
// returning the rebuilt result and the saved commit sequence number.
// records must be the exact record stream the saved state was built
// over (a service keeps it in its journal); the matcher is NEVER
// invoked — the match set comes from the snapshot blob, and the
// blocking state comes from the postings blob when present (falling
// back to replaying the records through a fresh index, which is
// blocking-only work). The returned result carries the streaming state
// Update needs, so ingestion continues incrementally exactly as if the
// process had never died. Run statistics are not persisted; the
// reopened result's Stats are zero apart from structural counts.
//
// A store with no saved snapshot returns match.ErrBlobNotFound
// (wrapped): the caller decides whether that means "fresh store" or
// "corruption".
func (p *Pipeline) Reopen(ctx context.Context, records []Record, s match.Store) (*PipelineResult, int, error) {
	if s == nil {
		return nil, 0, fmt.Errorf("cem: Reopen needs a store")
	}
	data, err := s.OpenBlob(match.KindSnapshot, stateBlobName)
	if err != nil {
		return nil, 0, fmt.Errorf("cem: reopening state: %w", err)
	}
	ck, err := wire.UnmarshalCheckpoint(data)
	if err != nil {
		return nil, 0, fmt.Errorf("cem: state snapshot: %w", err)
	}
	if got := schemeFromCore(ck.Scheme); got != p.scheme {
		return nil, 0, fmt.Errorf("cem: store state was saved from scheme %q, pipeline runs %q", ck.Scheme, p.scheme)
	}
	if ck.Matcher != p.matcher {
		return nil, 0, fmt.Errorf("cem: store state was saved by matcher %q, pipeline runs %q", ck.Matcher, p.matcher)
	}
	if ck.Entities != len(records) {
		return nil, 0, fmt.Errorf("cem: store state spans %d entities but %d records were supplied", ck.Entities, len(records))
	}

	start := time.Now()
	raw, labeled := toBibRecords(records)
	d, err := bib.DatasetFromRecords(p.name, raw)
	if err != nil {
		return nil, 0, fmt.Errorf("cem: reopening state: %w", err)
	}
	index, err := p.reopenIndex(ctx, records, d, s)
	if err != nil {
		return nil, 0, err
	}
	cover := index.Cover()
	if cover == nil || cover.Len() != ck.Neighborhoods || cover.NumEntities != ck.Entities {
		return nil, 0, fmt.Errorf("cem: reopened blocking state (%d sets) disagrees with the snapshot (%d sets) — were the records the saved stream?",
			cover.Len(), ck.Neighborhoods)
	}
	blockingTime := time.Since(start)

	opts := DefaultOptions()
	for _, o := range p.expOpts {
		o(&opts)
	}
	opts.Canopy = p.blocking
	exp, err := setup(d, opts, cover)
	if err != nil {
		return nil, 0, err
	}
	runner, err := exp.Runner(p.matcher, p.runnerOpts...)
	if err != nil {
		return nil, 0, err
	}

	// Fabricate the engine result from the snapshot: evidence and
	// messages verbatim, no matcher involvement.
	rawRes := &core.Result{Scheme: ck.Scheme, Matches: core.NewPairSet()}
	rawRes.Stats.Neighborhoods = cover.Len()
	n := core.EntityID(cover.NumEntities)
	for _, k := range ck.Delta {
		pr := core.PairKey(k).Pair()
		if !pr.Valid() || pr.B >= n {
			return nil, 0, fmt.Errorf("cem: state snapshot evidence pair %v invalid over %d entities", pr, n)
		}
		rawRes.Matches.AddKey(core.PairKey(k))
	}
	for _, g := range ck.Messages {
		msg := make([]match.Pair, len(g))
		for i, k := range g {
			msg[i] = core.PairKey(k).Pair()
		}
		rawRes.Messages = append(rawRes.Messages, msg)
	}
	res := runner.seal(rawRes)

	out := &PipelineResult{
		Result:       res,
		Experiment:   exp,
		Records:      len(records),
		Labeled:      labeled,
		BlockingTime: blockingTime,
		records:      append([]Record(nil), records...),
		index:        index,
		blocking:     p.blocking,
	}
	if labeled {
		report := exp.Evaluate(res)
		bcubed := exp.EvaluateBCubed(res)
		out.Report = &report
		out.BCubed = &bcubed
	}
	return out, ck.Round, nil
}

// reopenIndex restores the blocking state: from the postings blob when
// one is present and consistent with this pipeline, otherwise by
// replaying the records through a fresh delta index.
func (p *Pipeline) reopenIndex(ctx context.Context, records []Record, d *bib.Dataset, s match.Store) (*canopy.Index, error) {
	blob, err := s.OpenBlob(match.KindPostings, stateBlobName)
	if err == nil {
		ix, lerr := canopy.LoadIndex(blob)
		if lerr == nil && ix.Config() == p.blocking && ix.Len() == len(records) && ix.Cover() != nil {
			return ix, nil
		}
		// A stale or foreign postings blob is a cache miss, not an error.
	} else if !errors.Is(err, match.ErrBlobNotFound) {
		return nil, err
	}
	index, err := canopy.NewIndex(p.blocking)
	if err != nil {
		return nil, err
	}
	if _, _, err := index.Add(ctx, d); err != nil {
		return nil, err
	}
	return index, nil
}
