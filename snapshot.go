package cem

import (
	"fmt"

	"repro/match"
)

// Snapshot is the warm-start seed of an incremental continuation: a
// completed run's accumulated evidence and outstanding maximal messages,
// fingerprinted with the run's provenance — the same payload a PR-4
// checkpoint record carries for a round boundary, captured here at the
// run's end so that a later Runner.RunFrom (over a grown experiment) can
// pick up where the run left off instead of starting cold.
type Snapshot struct {
	// Scheme is the scheme that produced the snapshot; RunFrom refuses
	// to continue a different one. Empty opts out of the check.
	Scheme Scheme
	// Matcher is the registry name of the producing matcher; verified by
	// RunFrom like the checkpoint trail's matcher stamp. Empty opts out.
	Matcher string
	// Neighborhoods and Entities fingerprint the cover the snapshot was
	// taken over. A continuation may run over a *larger* cover (that is
	// the point of delta ingestion — entity ids are stable under append)
	// but never a smaller one.
	Neighborhoods int
	Entities      int
	// Evidence is the run's final match set as packed pair keys — the
	// committed V+ a continuation starts from.
	Evidence []match.PairKey
	// Messages are the run's outstanding (never promoted) maximal
	// messages; non-nil only for MMP snapshots. A later delta's evidence
	// may still promote them, so they ride along.
	Messages [][]match.Pair
}

// Snapshot captures a completed run of this experiment as a warm-start
// seed. For closed results (WithTransitiveClosure) the seed is the raw
// pre-closure match set: internal evidence is always unclosed, and the
// continuation re-applies closure at its own end.
func (e *Experiment) Snapshot(res *Result) (*Snapshot, error) {
	if res == nil || res.Result == nil {
		return nil, fmt.Errorf("cem: cannot snapshot a nil result")
	}
	if schemeFromCore(res.Scheme) == "" {
		return nil, fmt.Errorf("cem: scheme %q results cannot seed a continuation (no round structure)", res.Scheme)
	}
	matches := res.Matches
	if res.preClosure != nil {
		matches = res.preClosure
	}
	snap := &Snapshot{
		Scheme:        schemeFromCore(res.Scheme),
		Matcher:       res.Matcher,
		Neighborhoods: e.Cover.Len(),
		Entities:      e.Cover.NumEntities,
		Evidence:      matches.SortedKeys(),
	}
	for _, msg := range res.Messages {
		snap.Messages = append(snap.Messages, append([]match.Pair(nil), msg...))
	}
	return snap, nil
}

// schemeFromCore maps the engine's canonical scheme name back to the
// public constant ("" for whole-set schemes, which never snapshot).
func schemeFromCore(s string) Scheme {
	switch s {
	case "NO-MP":
		return SchemeNoMP
	case "SMP":
		return SchemeSMP
	case "MMP":
		return SchemeMMP
	}
	return ""
}
