package cem

import (
	"fmt"
	"io"

	"repro/internal/bib"
	"repro/internal/datagen"
	"repro/match"
)

// Record is the raw ingestion unit of the Pipeline: anything that can
// name the string to block and match on. Records optionally carry
// relational and evaluation signal through the Grouped and Labeled
// extensions; a bare Record is matched on its key alone.
type Record interface {
	// RecordKey returns the surface string (e.g., an author name) the
	// blocking stage and the matchers operate on.
	RecordKey() string
}

// Grouped is the optional relational extension of Record: records
// reporting the same non-negative group id are linked (they become
// coauthors in the synthesized bibliography — the relation collective
// matchers exploit). A negative group means "ungrouped".
type Grouped interface {
	RecordGroup() int32
}

// Labeled is the optional evaluation extension of Record: the gold
// entity id of the record, or a negative value when unknown. The
// Pipeline computes precision/recall and B-cubed metrics only when every
// record is labeled.
type Labeled interface {
	RecordGold() int32
}

// BasicRecord is the ready-made Record implementation: a key plus group
// and gold ids. CAUTION: 0 is a real group/label id, not "none" — a
// record without a group or label must say so explicitly with -1, or the
// pipeline will treat zero-valued records as one coauthor group all
// labeled entity 0 and score against that. When you only have keys, use
// KeyRecord, whose records carry no group/label at all.
type BasicRecord struct {
	Key   string
	Group int32
	Gold  int32
}

// RecordKey implements Record.
func (r BasicRecord) RecordKey() string { return r.Key }

// RecordGroup implements Grouped.
func (r BasicRecord) RecordGroup() int32 { return r.Group }

// RecordGold implements Labeled.
func (r BasicRecord) RecordGold() int32 { return r.Gold }

// KeyRecord wraps a bare string as an ungrouped, unlabeled Record — the
// safe way to feed the Pipeline when all you have is keys.
func KeyRecord(key string) Record { return keyRecord(key) }

type keyRecord string

func (k keyRecord) RecordKey() string { return string(k) }

// recordsFromBib lifts internal flat records into the public Record
// form — the single conversion point shared by every record source.
func recordsFromBib(raw []bib.Record) []Record {
	out := make([]Record, len(raw))
	for i, r := range raw {
		out[i] = BasicRecord{Key: r.Name, Group: r.Group, Gold: r.Gold}
	}
	return out
}

// RecordsFromDataset flattens a bibliography dataset into pipeline
// records: one record per author reference, grouped by paper and labeled
// with the ground truth (when present).
func RecordsFromDataset(d *match.Dataset) []Record {
	return recordsFromBib(bib.ToRecords(d))
}

// ReadRecords parses a raw records TSV (as written by WriteRecords or
// `emgen -records`): a `# records <name>` header followed by
// `<group>\t<gold>\t<name>` lines, -1 meaning ungrouped/unlabeled.
func ReadRecords(r io.Reader) (name string, records []Record, err error) {
	name, raw, err := bib.ReadRecords(r)
	if err != nil {
		return "", nil, err
	}
	return name, recordsFromBib(raw), nil
}

// WriteRecords serializes records in the TSV format ReadRecords parses.
// Records without group/label information are written as -1.
func WriteRecords(w io.Writer, name string, records []Record) error {
	raw, _ := toBibRecords(records)
	return bib.WriteRecords(w, name, raw)
}

// GenerateRecords synthesizes a corpus of the given kind (see
// GenerateDataset) and returns it in raw record form — the natural input
// of the Pipeline. Generation is deterministic in seed.
func GenerateRecords(kind DatasetKind, scale float64, seed int64) ([]Record, error) {
	if kind == People {
		if err := datagen.ValidateScale(scale); err != nil {
			return nil, fmt.Errorf("cem: %w", err)
		}
		raw, err := datagen.GeneratePeople(datagen.PeopleLike(scale, seed))
		if err != nil {
			return nil, err
		}
		return recordsFromBib(raw), nil
	}
	cfg, err := datagenConfig(kind, scale, seed)
	if err != nil {
		return nil, err
	}
	raw, err := datagen.GenerateRecords(cfg)
	if err != nil {
		return nil, err
	}
	return recordsFromBib(raw), nil
}

// toBibRecords lowers public records into the internal flat form,
// reporting whether every record carries a gold label.
func toBibRecords(records []Record) (recs []bib.Record, labeled bool) {
	recs = make([]bib.Record, len(records))
	labeled = true
	for i, r := range records {
		br := bib.Record{Name: r.RecordKey(), Group: -1, Gold: -1}
		if g, ok := r.(Grouped); ok {
			br.Group = g.RecordGroup()
		}
		if l, ok := r.(Labeled); ok {
			br.Gold = l.RecordGold()
		}
		if br.Gold < 0 {
			labeled = false
		}
		recs[i] = br
	}
	return recs, labeled
}
