package cem_test

import (
	"fmt"
	"log"

	cem "repro"
)

// ExampleSetup demonstrates the standard pipeline: generate a corpus,
// wire an experiment, run maximal message passing, and evaluate.
func ExampleSetup() {
	dataset := cem.NewDataset(cem.DBLP, 0.2, 7)
	exp, err := cem.Setup(dataset, cem.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	res, err := exp.Run(cem.SchemeMMP, cem.MatcherMLN)
	if err != nil {
		log.Fatal(err)
	}
	full, err := exp.Run(cem.SchemeFull, cem.MatcherMLN)
	if err != nil {
		log.Fatal(err)
	}
	// MMP reproduces the (normally infeasible) full run exactly.
	fmt.Println("mmp equals full:", res.Matches.Equal(full.Matches))
	// Output:
	// mmp equals full: true
}

// ExampleExperiment_Run shows the scheme progression of the paper's §2.2:
// more message passing never loses matches.
func ExampleExperiment_Run() {
	exp, err := cem.Setup(cem.NewDataset(cem.DBLP, 0.2, 7), cem.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	nomp, _ := exp.Run(cem.SchemeNoMP, cem.MatcherMLN)
	smp, _ := exp.Run(cem.SchemeSMP, cem.MatcherMLN)
	mmp, _ := exp.Run(cem.SchemeMMP, cem.MatcherMLN)
	fmt.Println("nomp ⊆ smp:", nomp.Matches.Subset(smp.Matches))
	fmt.Println("smp ⊆ mmp:", smp.Matches.Subset(mmp.Matches))
	// Output:
	// nomp ⊆ smp: true
	// smp ⊆ mmp: true
}
