package cem_test

import (
	"context"
	"fmt"
	"log"
	"runtime"

	cem "repro"
)

// ExampleNew demonstrates the standard pipeline: generate a corpus,
// wire an experiment, run maximal message passing through a Runner, and
// evaluate.
func ExampleNew() {
	dataset := cem.NewDataset(cem.DBLP, 0.2, 7)
	exp, err := cem.New(dataset)
	if err != nil {
		log.Fatal(err)
	}
	runner, err := exp.Runner(cem.MatcherMLN)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	res, err := runner.Run(ctx, cem.SchemeMMP)
	if err != nil {
		log.Fatal(err)
	}
	full, err := runner.Run(ctx, cem.SchemeFull)
	if err != nil {
		log.Fatal(err)
	}
	// MMP reproduces the (normally infeasible) full run exactly.
	fmt.Println("mmp equals full:", res.Matches.Equal(full.Matches))
	// Output:
	// mmp equals full: true
}

// ExampleRunner_Run shows the scheme progression of the paper's §2.2:
// more message passing never loses matches. Parallelism does not change
// any output (consistency, Theorems 2 and 4).
func ExampleRunner_Run() {
	exp, err := cem.New(cem.NewDataset(cem.DBLP, 0.2, 7))
	if err != nil {
		log.Fatal(err)
	}
	runner, err := exp.Runner(cem.MatcherMLN,
		cem.WithParallelism(runtime.NumCPU()))
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	nomp, _ := runner.Run(ctx, cem.SchemeNoMP)
	smp, _ := runner.Run(ctx, cem.SchemeSMP)
	mmp, _ := runner.Run(ctx, cem.SchemeMMP)
	fmt.Println("nomp ⊆ smp:", nomp.Matches.Subset(smp.Matches))
	fmt.Println("smp ⊆ mmp:", smp.Matches.Subset(mmp.Matches))
	// Output:
	// nomp ⊆ smp: true
	// smp ⊆ mmp: true
}

// ExampleExperiment_Run exercises the deprecated enum-style wrapper,
// which remains for one release: it delegates to a Runner with
// context.Background and no options.
func ExampleExperiment_Run() {
	exp, err := cem.New(cem.NewDataset(cem.DBLP, 0.2, 7))
	if err != nil {
		log.Fatal(err)
	}
	res, err := exp.Run(cem.SchemeSMP, cem.MatcherMLN)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("matcher:", res.Matcher)
	// Output:
	// matcher: mln
}
