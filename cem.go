// Package cem (Collective Entity Matching) is the public face of this
// repository: a from-scratch Go reproduction of "Large-Scale Collective
// Entity Matching" (Rastogi, Dalvi, Garofalakis; PVLDB 4(4), 2011).
//
// The paper's contribution is a framework that scales any black-box
// collective entity matcher by running it on small overlapping
// neighborhoods (a total cover) and passing messages between them:
//
//   - NO-MP  — independent neighborhood runs (baseline),
//   - SMP    — simple message passing (Algorithm 1): found matches flow
//     between neighborhoods as positive evidence,
//   - MMP    — maximal message passing (Algorithms 2–3): neighborhoods
//     additionally exchange all-or-nothing sets of correlated
//     pairs, recovering matches no single neighborhood can make,
//   - FULL   — the matcher on the whole dataset (reference, when feasible),
//   - UB     — a ground-truth-conditioned upper bound on the full run.
//
// Two collective matchers are provided: MLN, the Markov-Logic matcher of
// Singla & Domingos with the paper's Appendix B rules and exact
// graph-cut MAP inference, and RULES, a Dedupalog-style monotone rule
// program. Synthetic bibliography generators reproduce the statistical
// regimes of the paper's HEPTH, DBLP and DBLP-BIG corpora.
//
// Quick start:
//
//	ds := cem.NewDataset(cem.HEPTH, 0.5, 42)
//	exp, err := cem.Setup(ds, cem.DefaultOptions())
//	res, err := exp.Run(cem.SchemeMMP, cem.MatcherMLN)
//	fmt.Println(exp.Evaluate(res))
package cem

import (
	"fmt"

	"repro/internal/bib"
	"repro/internal/canopy"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/eval"
	"repro/internal/grid"
	"repro/internal/mln"
	"repro/internal/rules"
	"repro/internal/unionfind"
)

// DatasetKind selects one of the paper's three corpus regimes.
type DatasetKind string

const (
	// HEPTH mimics the KDD-Cup 2003 high-energy-physics corpus:
	// abbreviated author names, few large neighborhoods.
	HEPTH DatasetKind = "hepth"
	// DBLP mimics the paper's mutated-DBLP corpus: full names with typo
	// noise, many small neighborhoods.
	DBLP DatasetKind = "dblp"
	// DBLPBig is the DBLP regime at grid scale (§6.3).
	DBLPBig DatasetKind = "dblp-big"
)

// Scheme selects the execution scheme.
type Scheme string

const (
	SchemeNoMP Scheme = "nomp"
	SchemeSMP  Scheme = "smp"
	SchemeMMP  Scheme = "mmp"
	SchemeFull Scheme = "full"
	SchemeUB   Scheme = "ub"
)

// MatcherKind selects the underlying black-box matcher.
type MatcherKind string

const (
	// MatcherMLN is the Type-II probabilistic Markov-Logic matcher.
	MatcherMLN MatcherKind = "mln"
	// MatcherRules is the Type-I Dedupalog*-style matcher.
	MatcherRules MatcherKind = "rules"
)

// Options configures Setup.
type Options struct {
	// Canopy controls cover construction.
	Canopy canopy.Config
	// MLNWeights are the Markov-Logic rule weights.
	MLNWeights mln.Weights
	// Rules is the RULES program.
	Rules []rules.Rule
}

// DefaultOptions returns the paper's configuration: default canopies,
// Appendix B MLN weights, and the Appendix B rule program.
func DefaultOptions() Options {
	return Options{
		Canopy:     canopy.DefaultConfig(),
		MLNWeights: mln.PaperWeights(),
		Rules:      rules.PaperRules(),
	}
}

// NewDataset generates a synthetic corpus of the given kind. Scale 1.0 is
// a workstation-sized instance (thousands of references); larger scales
// approach the paper's corpus sizes. Generation is deterministic in seed.
func NewDataset(kind DatasetKind, scale float64, seed int64) *bib.Dataset {
	switch kind {
	case HEPTH:
		return datagen.MustGenerate(datagen.HEPTHLike(scale, seed))
	case DBLP:
		return datagen.MustGenerate(datagen.DBLPLike(scale, seed))
	case DBLPBig:
		return datagen.MustGenerate(datagen.DBLPBigLike(scale, seed))
	default:
		panic(fmt.Sprintf("cem: unknown dataset kind %q", kind))
	}
}

// Experiment is a fully wired instance: dataset, total cover, candidate
// pairs, both matchers, and ground truth. Build one with Setup.
type Experiment struct {
	Dataset    *bib.Dataset
	Cover      *core.Cover
	Candidates []canopy.SimilarPair
	MLN        *mln.Matcher
	Rules      *rules.Matcher
	Truth      core.PairSet
}

// Setup builds the total cover (canopies + Coauthor boundary), derives
// the candidate pairs, grounds both matchers, and collects ground truth.
func Setup(d *bib.Dataset, opts Options) (*Experiment, error) {
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("cem: invalid dataset: %w", err)
	}
	cover := canopy.BuildCover(d, opts.Canopy)
	cands := canopy.CandidatePairs(d, cover)

	mlnCands := make([]mln.Candidate, len(cands))
	rulesCands := make([]rules.Candidate, len(cands))
	for i, c := range cands {
		mlnCands[i] = mln.Candidate{Pair: c.Pair, Level: c.Level}
		rulesCands[i] = rules.Candidate{Pair: c.Pair, Level: c.Level}
	}
	mm, err := mln.New(d, mlnCands, opts.MLNWeights)
	if err != nil {
		return nil, err
	}
	rm, err := rules.New(d, rulesCands, opts.Rules)
	if err != nil {
		return nil, err
	}
	truth := core.NewPairSet()
	for p := range d.TruePairs() {
		truth.Add(core.MakePair(p[0], p[1]))
	}
	return &Experiment{
		Dataset:    d,
		Cover:      cover,
		Candidates: cands,
		MLN:        mm,
		Rules:      rm,
		Truth:      truth,
	}, nil
}

// matcher returns the selected black box.
func (e *Experiment) matcher(kind MatcherKind) (core.Matcher, error) {
	switch kind {
	case MatcherMLN:
		return e.MLN, nil
	case MatcherRules:
		return e.Rules, nil
	default:
		return nil, fmt.Errorf("cem: unknown matcher kind %q", kind)
	}
}

// coreConfig assembles the framework configuration for a matcher.
func (e *Experiment) coreConfig(kind MatcherKind) (core.Config, error) {
	m, err := e.matcher(kind)
	if err != nil {
		return core.Config{}, err
	}
	return core.Config{Cover: e.Cover, Matcher: m, Relation: e.Dataset.Coauthor()}, nil
}

// Run executes one scheme with one matcher and returns the raw result.
func (e *Experiment) Run(s Scheme, kind MatcherKind) (*core.Result, error) {
	cfg, err := e.coreConfig(kind)
	if err != nil {
		return nil, err
	}
	switch s {
	case SchemeNoMP:
		return core.NoMP(cfg), nil
	case SchemeSMP:
		return core.SMP(cfg), nil
	case SchemeMMP:
		return core.MMP(cfg)
	case SchemeFull:
		return core.Full(cfg), nil
	case SchemeUB:
		return core.UB(cfg, e.Truth)
	default:
		return nil, fmt.Errorf("cem: unknown scheme %q", s)
	}
}

// RunGrid executes one scheme on the simulated grid (§6.3).
func (e *Experiment) RunGrid(s Scheme, kind MatcherKind, gcfg grid.Config) (*grid.Result, error) {
	cfg, err := e.coreConfig(kind)
	if err != nil {
		return nil, err
	}
	switch s {
	case SchemeNoMP:
		return grid.NoMP(cfg, gcfg)
	case SchemeSMP:
		return grid.SMP(cfg, gcfg)
	case SchemeMMP:
		return grid.MMP(cfg, gcfg)
	default:
		return nil, fmt.Errorf("cem: scheme %q not supported on the grid", s)
	}
}

// Evaluate scores a result against ground truth (no reference run).
func (e *Experiment) Evaluate(res *core.Result) eval.Report {
	return eval.Evaluate(res, e.Truth, nil)
}

// EvaluateAgainst scores a result against ground truth and a reference
// run (for soundness/completeness, §2.2.1).
func (e *Experiment) EvaluateAgainst(res *core.Result, reference core.PairSet) eval.Report {
	return eval.Evaluate(res, e.Truth, reference)
}

// EvaluateBCubed computes the B-cubed cluster metric of a result: the
// match set is closed into clusters and scored per entity against the
// ground-truth author of each reference. Complements the paper's
// pairwise precision/recall with the cluster-level view common in entity
// resolution.
func (e *Experiment) EvaluateBCubed(res *core.Result) eval.PRF {
	gold := make([]int32, e.Dataset.NumRefs())
	for i := range e.Dataset.Refs {
		gold[i] = e.Dataset.Refs[i].True
	}
	return eval.BCubedFromMatches(res.Matches, gold)
}

// TransitiveClosure returns the transitive closure of a match set over
// the dataset's references — the optional post-processing step Appendix A
// notes preserves monotonicity when applied at the end.
func (e *Experiment) TransitiveClosure(matches core.PairSet) core.PairSet {
	n := e.Dataset.NumRefs()
	dsu := unionfind.New(n)
	for p := range matches {
		dsu.Union(int(p.A), int(p.B))
	}
	members := map[int][]core.EntityID{}
	for i := 0; i < n; i++ {
		r := dsu.Find(i)
		members[r] = append(members[r], core.EntityID(i))
	}
	out := core.NewPairSet()
	for _, comp := range members {
		for i := 0; i < len(comp); i++ {
			for j := i + 1; j < len(comp); j++ {
				out.Add(core.MakePair(comp[i], comp[j]))
			}
		}
	}
	return out
}
