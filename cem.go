// Package cem (Collective Entity Matching) is the public face of this
// repository: a from-scratch Go reproduction of "Large-Scale Collective
// Entity Matching" (Rastogi, Dalvi, Garofalakis; PVLDB 4(4), 2011).
//
// The paper's contribution is a framework that scales ANY black-box
// collective entity matcher by running it on small overlapping
// neighborhoods (a total cover) and passing messages between them:
//
//   - NO-MP  — independent neighborhood runs (baseline),
//   - SMP    — simple message passing (Algorithm 1): found matches flow
//     between neighborhoods as positive evidence,
//   - MMP    — maximal message passing (Algorithms 2–3): neighborhoods
//     additionally exchange all-or-nothing sets of correlated
//     pairs, recovering matches no single neighborhood can make,
//   - FULL   — the matcher on the whole dataset (reference, when feasible),
//   - UB     — a ground-truth-conditioned upper bound on the full run.
//
// The engine is generic over the matcher: implementations of the
// interfaces in repro/match plug in through RegisterMatcher, with no
// access to internal packages required. Two collective matchers ship as
// built-ins — "mln", the Markov-Logic matcher of Singla & Domingos with
// the paper's Appendix B rules and exact graph-cut MAP inference, and
// "rules", a Dedupalog-style monotone rule program. Synthetic
// bibliography generators reproduce the statistical regimes of the
// paper's HEPTH, DBLP and DBLP-BIG corpora.
//
// Quick start:
//
//	ds := cem.NewDataset(cem.HEPTH, 0.5, 42)
//	exp, err := cem.New(ds)
//	runner, err := exp.Runner("mln", cem.WithParallelism(runtime.NumCPU()))
//	res, err := runner.Run(ctx, cem.SchemeMMP)
//	fmt.Println(exp.Evaluate(res))
//
// Custom matchers register once (typically from an init function) and
// are then available to every Experiment:
//
//	cem.RegisterMatcher("mine", func(mc cem.MatcherContext) (match.Matcher, error) {
//		return myMatcher{cands: mc.Candidates}, nil
//	})
//
// Runs accept a context.Context for cancellation and deadlines, and
// WithParallelism(n) evaluates independent neighborhoods concurrently —
// NO-MP on a worker pool, SMP/MMP in the grid executor's round-based
// map/reduce structure on shared memory — without changing the output
// (consistency, Theorems 2 and 4).
package cem

import (
	"fmt"
	"sync"

	"repro/internal/bib"
	"repro/internal/canopy"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/eval"
	"repro/internal/mln"
	"repro/internal/rules"
	"repro/internal/unionfind"
	"repro/match"
)

// DatasetKind selects one of the paper's three corpus regimes.
type DatasetKind string

const (
	// HEPTH mimics the KDD-Cup 2003 high-energy-physics corpus:
	// abbreviated author names, few large neighborhoods.
	HEPTH DatasetKind = "hepth"
	// DBLP mimics the paper's mutated-DBLP corpus: full names with typo
	// noise, many small neighborhoods.
	DBLP DatasetKind = "dblp"
	// DBLPBig is the DBLP regime at grid scale (§6.3).
	DBLPBig DatasetKind = "dblp-big"
	// Million is the DBLP regime sized to ~1M references at scale 1.0 —
	// the larger-than-RAM storage trajectory corpus (see WithStore).
	Million DatasetKind = "million"
	// People is the second end-to-end domain: household-snapshot person
	// dedup over typed-field composite keys (name | street | phone |
	// zip), with households as the co-occurrence relation. Match it with
	// a declarative rules file (see RegisterRuleProgram) rather than the
	// bibliographic built-ins.
	People DatasetKind = "people"
)

// Scheme selects the execution scheme.
type Scheme string

const (
	SchemeNoMP Scheme = "nomp"
	SchemeSMP  Scheme = "smp"
	SchemeMMP  Scheme = "mmp"
	SchemeFull Scheme = "full"
	SchemeUB   Scheme = "ub"
)

// MatcherKind names a registered matcher.
//
// Deprecated: matcher selection is by registry name (a plain string);
// use the constants below or the name passed to RegisterMatcher.
type MatcherKind = string

const (
	// MatcherMLN is the Type-II probabilistic Markov-Logic matcher.
	MatcherMLN = "mln"
	// MatcherRules is the Type-I Dedupalog*-style matcher.
	MatcherRules = "rules"
)

// CanopyConfig controls cover construction (canopy thresholds and the
// relational boundary absorbed into each neighborhood). Aliased here so
// external modules can name it without importing internal packages.
type CanopyConfig = canopy.Config

// Report is one evaluated run: pairwise precision/recall/F1 against
// ground truth plus framework-level soundness/completeness. Aliased so
// external modules can name evaluation results without importing
// internal packages.
type Report = eval.Report

// PRF holds precision, recall and F1 (pairwise or B-cubed).
type PRF = eval.PRF

// MLNWeights are the built-in Markov-Logic matcher's rule weights.
type MLNWeights = mln.Weights

// CacheReport is one run's verdict-memo accounting (hits, misses,
// invalidations), reported in RunStats.Cache by matchers that memoize —
// the built-in MLN matcher does. Aliased so external modules can read
// the report without importing internal packages.
type CacheReport = match.CacheReport

// Options configures experiment construction. Prefer the functional
// Option helpers with New; the struct remains for the deprecated Setup
// path.
type Options struct {
	// Canopy controls cover construction.
	Canopy CanopyConfig
	// MLNWeights are the Markov-Logic rule weights.
	MLNWeights MLNWeights
	// Rules is the RULES program.
	Rules []match.Rule
}

// DefaultOptions returns the paper's configuration: default canopies,
// Appendix B MLN weights, and the Appendix B rule program.
func DefaultOptions() Options {
	return Options{
		Canopy:     canopy.DefaultConfig(),
		MLNWeights: mln.PaperWeights(),
		Rules:      rules.PaperRules(),
	}
}

// Option customizes experiment construction (New).
type Option func(*Options)

// WithCanopy overrides the cover-construction configuration (start
// from DefaultOptions().Canopy).
func WithCanopy(c CanopyConfig) Option {
	return func(o *Options) { o.Canopy = c }
}

// WithMLNWeights overrides the built-in MLN matcher's rule weights.
func WithMLNWeights(w MLNWeights) Option {
	return func(o *Options) { o.MLNWeights = w }
}

// WithRules overrides the built-in RULES matcher's rule program.
func WithRules(rs []match.Rule) Option {
	return func(o *Options) { o.Rules = rs }
}

// NewDataset generates a synthetic corpus of the given kind. Scale 1.0 is
// a workstation-sized instance (thousands of references); larger scales
// approach the paper's corpus sizes. Generation is deterministic in seed.
// Panics on an unknown kind; GenerateDataset is the error-returning
// variant.
func NewDataset(kind DatasetKind, scale float64, seed int64) *match.Dataset {
	d, err := GenerateDataset(kind, scale, seed)
	if err != nil {
		panic(err.Error())
	}
	return d
}

// GenerateDataset generates a synthetic corpus of the given kind,
// reporting unknown kinds and generation failures as errors.
func GenerateDataset(kind DatasetKind, scale float64, seed int64) (*match.Dataset, error) {
	if kind == People {
		if err := datagen.ValidateScale(scale); err != nil {
			return nil, fmt.Errorf("cem: %w", err)
		}
		recs, err := datagen.GeneratePeople(datagen.PeopleLike(scale, seed))
		if err != nil {
			return nil, err
		}
		return bib.DatasetFromRecords("people-like", recs)
	}
	cfg, err := datagenConfig(kind, scale, seed)
	if err != nil {
		return nil, err
	}
	return datagen.Generate(cfg)
}

// datagenConfig maps a dataset kind to its generator preset. The scale
// is validated here — the one choke point every generation path (CLI
// flags included) goes through — so NaN and non-positive scales fail
// loudly instead of silently collapsing to one-reference corpora.
func datagenConfig(kind DatasetKind, scale float64, seed int64) (datagen.Config, error) {
	if err := datagen.ValidateScale(scale); err != nil {
		return datagen.Config{}, fmt.Errorf("cem: %w", err)
	}
	switch kind {
	case HEPTH:
		return datagen.HEPTHLike(scale, seed), nil
	case DBLP:
		return datagen.DBLPLike(scale, seed), nil
	case DBLPBig:
		return datagen.DBLPBigLike(scale, seed), nil
	case Million:
		return datagen.MillionLike(scale, seed), nil
	default:
		return datagen.Config{}, fmt.Errorf("cem: unknown dataset kind %q", kind)
	}
}

// Experiment is a fully wired instance: dataset, total cover, candidate
// pairs, the built-in matchers, and ground truth. Build one with New.
type Experiment struct {
	Dataset    *match.Dataset
	Cover      *core.Cover
	Candidates []match.Candidate
	MLN        *mln.Matcher
	Rules      *rules.Matcher
	Truth      match.PairSet

	opts Options

	mu    sync.Mutex
	built map[string]match.Matcher // lazily built registry matchers
}

// New builds the total cover (canopies + Coauthor boundary), derives the
// candidate pairs, grounds the built-in matchers, and collects ground
// truth. Registered third-party matchers are instantiated lazily, on the
// first Runner that names them.
func New(d *match.Dataset, options ...Option) (*Experiment, error) {
	opts := DefaultOptions()
	for _, o := range options {
		o(&opts)
	}
	return Setup(d, opts)
}

// Setup is the struct-options constructor.
//
// Deprecated: use New with functional options.
func Setup(d *match.Dataset, opts Options) (*Experiment, error) {
	if err := opts.Canopy.Validate(); err != nil {
		return nil, fmt.Errorf("cem: %w", err)
	}
	return setup(d, opts, nil)
}

// setup wires an experiment, building the cover from opts.Canopy unless
// a prebuilt one is supplied (the Pipeline path, which constructs its
// cover sharded and under a context).
func setup(d *match.Dataset, opts Options, cover *core.Cover) (*Experiment, error) {
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("cem: invalid dataset: %w", err)
	}
	if cover == nil {
		cover = canopy.BuildCover(d, opts.Canopy)
	}
	sp := canopy.CandidatePairs(d, cover)
	cands := make([]match.Candidate, len(sp))
	for i, c := range sp {
		cands[i] = match.Candidate{Pair: c.Pair, Level: c.Level}
	}

	truth := match.NewPairSet()
	for p := range d.TruePairs() {
		truth.Add(match.MakePair(p[0], p[1]))
	}
	e := &Experiment{
		Dataset:    d,
		Cover:      cover,
		Candidates: cands,
		Truth:      truth,
		opts:       opts,
		built:      map[string]match.Matcher{},
	}
	// Ground the built-ins eagerly through their registered factories —
	// the same path third-party matchers take — and keep the typed
	// handles for weight learning and direct probing.
	mlnM, err := e.matcher(MatcherMLN)
	if err != nil {
		return nil, err
	}
	rulesM, err := e.matcher(MatcherRules)
	if err != nil {
		return nil, err
	}
	e.MLN = mlnM.(*mln.Matcher)
	e.Rules = rulesM.(*rules.Matcher)
	return e, nil
}

// matcherContext assembles the factory input for this experiment.
func (e *Experiment) matcherContext() MatcherContext {
	return MatcherContext{Dataset: e.Dataset, Candidates: e.Candidates, Options: e.opts}
}

// matcher returns the named matcher, instantiating and caching it on
// first use.
func (e *Experiment) matcher(name string) (match.Matcher, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if m, ok := e.built[name]; ok {
		return m, nil
	}
	factory, ok := lookupMatcher(name)
	if !ok {
		return nil, fmt.Errorf("cem: unknown matcher %q (registered: %v)", name, Matchers())
	}
	m, err := factory(e.matcherContext())
	if err != nil {
		return nil, fmt.Errorf("cem: building matcher %q: %w", name, err)
	}
	if m == nil {
		return nil, fmt.Errorf("cem: matcher factory %q returned nil", name)
	}
	e.built[name] = m
	return m, nil
}

// Evaluate scores a result against ground truth (no reference run).
func (e *Experiment) Evaluate(res *Result) eval.Report {
	return eval.Evaluate(res.Result, e.Truth, nil)
}

// EvaluateAgainst scores a result against ground truth and a reference
// run (for soundness/completeness, §2.2.1).
func (e *Experiment) EvaluateAgainst(res *Result, reference match.PairSet) eval.Report {
	return eval.Evaluate(res.Result, e.Truth, reference)
}

// EvaluateBCubed computes the B-cubed cluster metric of a result: the
// match set is closed into clusters and scored per entity against the
// ground-truth author of each reference. Complements the paper's
// pairwise precision/recall with the cluster-level view common in entity
// resolution.
func (e *Experiment) EvaluateBCubed(res *Result) eval.PRF {
	gold := make([]int32, e.Dataset.NumRefs())
	for i := range e.Dataset.Refs {
		gold[i] = e.Dataset.Refs[i].True
	}
	return eval.BCubedFromMatches(res.Matches, gold)
}

// TransitiveClosure returns the transitive closure of a match set over
// the dataset's references — the optional post-processing step Appendix A
// notes preserves monotonicity when applied at the end. Runners apply it
// automatically under WithTransitiveClosure. Only entities that
// participate in a match are grouped; singleton components are skipped
// rather than materialized.
func (e *Experiment) TransitiveClosure(matches match.PairSet) match.PairSet {
	n := e.Dataset.NumRefs()
	dsu := unionfind.New(n)
	for p := range matches.All() {
		dsu.Union(int(p.A), int(p.B))
	}
	members := map[int][]match.EntityID{}
	seen := make([]bool, n)
	add := func(id match.EntityID) {
		if seen[id] {
			return
		}
		seen[id] = true
		r := dsu.Find(int(id))
		members[r] = append(members[r], id)
	}
	for p := range matches.All() {
		add(p.A)
		add(p.B)
	}
	out := match.NewPairSet()
	for _, comp := range members {
		for i := 0; i < len(comp); i++ {
			for j := i + 1; j < len(comp); j++ {
				out.Add(match.MakePair(comp[i], comp[j]))
			}
		}
	}
	return out
}
