// Package match is the public contract between the cem framework and
// black-box entity matchers. Third-party matchers implement the Matcher
// (Type-I) or Probabilistic (Type-II) interfaces defined here — using
// only this package and the root cem package, never repro/internal/… —
// and are plugged into the framework with cem.RegisterMatcher.
//
// The types are aliases of the framework's internal core types, so a
// matcher written against this package satisfies the engine's interfaces
// directly, with no adaptation layer and no copying at the boundary.
package match

import (
	"repro/internal/bib"
	"repro/internal/core"
	"repro/internal/rules"
	"repro/internal/similarity"
)

// EntityID identifies an entity. Ids are dense in [0, n).
type EntityID = core.EntityID

// Pair is an unordered entity pair, normalized so A < B (build with
// MakePair).
type Pair = core.Pair

// PairKey is a pair packed into one uint64 (A high, B low): the set
// representation and the stable sort order of the engine. Ranging over a
// PairSet yields PairKeys; unpack with PairKey.Pair or iterate pairs
// directly with PairSet.All.
type PairKey = core.PairKey

// PairSet is a set of normalized pairs on packed keys (build with
// NewPairSet; iterate with All or Sorted).
type PairSet = core.PairSet

// Cover is a set of neighborhoods whose union is the entity set (§4).
type Cover = core.Cover

// ScopePreparer is the optional matcher extension the schedulers invoke
// once per run with the run's cover, letting a matcher precompute
// per-neighborhood state (the cover and the model are immutable during a
// run; only evidence grows). Matchers must keep answering correctly for
// entity slices outside the prepared cover.
type ScopePreparer = core.ScopePreparer

// Matcher is the Type-I black-box abstraction (Definition 1): a
// deterministic function E(E, V+, V−) from an entity subset and
// positive/negative evidence to a set of matches. Implementations must
// be safe for concurrent Match/Candidates calls — the engine evaluates
// independent neighborhoods in parallel.
type Matcher = core.Matcher

// Probabilistic is the Type-II abstraction (Definition 5): a Matcher
// backed by a probability distribution over match sets, exposing
// LogScore. Required by the MMP scheme and the UB oracle.
type Probabilistic = core.Probabilistic

// ConditionalDecider is the optional extension required by the UB
// oracle (§6.1).
type ConditionalDecider = core.ConditionalDecider

// MatcherFunc adapts plain functions to the Matcher interface — the
// quickest way to register a custom black box.
type MatcherFunc = core.MatcherFunc

// Result is the raw outcome of one scheme run.
type Result = core.Result

// RunStats instruments a run (matcher calls, evaluations, messages,
// promoted sets, wall time, …).
type RunStats = core.RunStats

// CacheReport accounts a matcher's cross-neighborhood verdict memo over
// one run (hits, misses, invalidations); see RunStats.Cache.
type CacheReport = core.CacheReport

// CacheReporter is the optional matcher extension exposing cumulative
// verdict-memo counters; schemes report the per-run delta in
// RunStats.Cache.
type CacheReporter = core.CacheReporter

// ProgressEvent is delivered to progress callbacks after every
// neighborhood evaluation.
type ProgressEvent = core.ProgressEvent

// Order selects the scheduling discipline of the serial schedulers.
type Order = core.Order

// Scheduling disciplines (immaterial for correctness — Theorems 2/4).
const (
	OrderFIFO          = core.OrderFIFO
	OrderLIFO          = core.OrderLIFO
	OrderSmallestFirst = core.OrderSmallestFirst
	OrderLargestFirst  = core.OrderLargestFirst
)

// Backend executes the rounds of a message-passing scheme: it owns the
// Map side (where each round's active neighborhoods are evaluated),
// while the engine's RoundDriver owns the central Reduce (evidence
// merge, message promotion, re-activation, checkpointing). Built-in
// backends: the shared-memory worker pool (default) and the
// shard-partitioned backend exchanging serialized evidence deltas.
// Select one with cem.WithBackend or cem.NewBackend; custom backends
// drive the RoundDriver's Evaluate/FinishRound cycle.
type Backend = core.Backend

// RoundPlan is the immutable description of a round-based run handed to
// a Backend (scheme, cover, matcher, configuration).
type RoundPlan = core.RoundPlan

// RoundDriver is the engine's central reduce state, driven round by
// round by a Backend.
type RoundDriver = core.RoundDriver

// Job is the outcome of one neighborhood evaluation, produced by
// RoundDriver.Evaluate and consumed by RoundDriver.FinishRound.
type Job = core.Job

// Dataset is a bibliographic corpus: papers, author references, and
// (for synthetic corpora) ground-truth author ids.
type Dataset = bib.Dataset

// Paper is one publication with the ids of its author references.
type Paper = bib.Paper

// Reference is one author occurrence on a paper; True carries the
// ground-truth author id (−1 when unknown).
type Reference = bib.Reference

// Level grades the string similarity of a candidate pair, 1–3 with 3
// strongest; LevelNone means "not a candidate".
type Level = similarity.Level

// Similarity levels of candidate pairs.
const (
	LevelNone   = similarity.LevelNone
	LevelWeak   = similarity.LevelWeak
	LevelMedium = similarity.LevelMedium
	LevelStrong = similarity.LevelStrong
)

// Rule is one clause of a Dedupalog*-style monotone rule program: a
// pair at exactly Level matches once at least MinCoauthorMatches of its
// coauthor pairs are matched.
type Rule = rules.Rule

// Candidate is one in-scope matching decision handed to matcher
// factories: a normalized reference pair plus its similarity level.
type Candidate struct {
	Pair  Pair
	Level Level
}

// MakePair returns the normalized pair {a, b}.
func MakePair(a, b EntityID) Pair { return core.MakePair(a, b) }

// NewPairSet returns an empty set, optionally seeded with pairs.
func NewPairSet(pairs ...Pair) PairSet { return core.NewPairSet(pairs...) }
