package match

import "repro/internal/store"

// Storage-layer aliases. Third-party Store implementations are written
// against these (plus cem.RegisterStore) and never import repro/internal
// — the same arrangement the Matcher and Backend aliases above provide
// for matchers and executors.

// Store is the engine's persistence boundary: the accumulated evidence
// set (packed pair keys) plus named blobs (run snapshots, blocking
// postings). Register implementations with cem.RegisterStore; the
// built-ins are "mem" (process maps, the default) and "disk"
// (append-only difference-encoded segment files).
type Store = store.Store

// StoreOptions is the resolved open-time configuration a StoreFactory
// receives.
type StoreOptions = store.Options

// StoreOption mutates StoreOptions — the functional options accepted by
// cem.WithStore and cem.OpenStore (cem.WithStoreDir and friends build
// them).
type StoreOption = store.Option

// StoreFactory opens a Store from resolved options.
type StoreFactory = store.Factory

// ErrBlobNotFound reports a Store blob lookup that matched nothing.
var ErrBlobNotFound = store.ErrNotFound

// Blob kinds the engine itself uses (stores treat kinds as opaque
// namespaces).
const (
	KindSnapshot = store.KindSnapshot
	KindPostings = store.KindPostings
)
