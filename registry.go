package cem

import (
	"sort"
	"sync"

	"repro/internal/mln"
	"repro/internal/rules"
	"repro/match"
)

// MatcherContext is the per-experiment input handed to matcher
// factories: the dataset, the in-scope matching decisions (candidate
// pairs with similarity levels), and the setup options. Factories must
// not mutate the context's slices.
type MatcherContext struct {
	Dataset    *match.Dataset
	Candidates []match.Candidate
	Options    Options
}

// MatcherFactory grounds a black-box matcher for one experiment. The
// returned matcher must satisfy match.Matcher; matchers additionally
// implementing match.Probabilistic unlock the MMP scheme, and
// match.ConditionalDecider unlocks the UB oracle.
type MatcherFactory func(MatcherContext) (match.Matcher, error)

var (
	registryMu sync.RWMutex
	registry   = map[string]MatcherFactory{}
)

// RegisterMatcher makes a matcher available to every Experiment under
// the given name. It is typically called from an init function. It
// panics if name is empty, factory is nil, or name is already
// registered (like database/sql.Register).
func RegisterMatcher(name string, factory MatcherFactory) {
	if name == "" {
		panic("cem: RegisterMatcher with empty name")
	}
	if factory == nil {
		panic("cem: RegisterMatcher with nil factory for " + name)
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic("cem: RegisterMatcher called twice for " + name)
	}
	registry[name] = factory
}

// Matchers returns the sorted names of all registered matchers.
func Matchers() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// lookupMatcher resolves a registered factory.
func lookupMatcher(name string) (MatcherFactory, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	f, ok := registry[name]
	return f, ok
}

// The built-in matchers register through the same public path as
// third-party ones.
func init() {
	RegisterMatcher(MatcherMLN, func(mc MatcherContext) (match.Matcher, error) {
		cands := make([]mln.Candidate, len(mc.Candidates))
		for i, c := range mc.Candidates {
			cands[i] = mln.Candidate{Pair: c.Pair, Level: c.Level}
		}
		return mln.New(mc.Dataset, cands, mc.Options.MLNWeights)
	})
	RegisterMatcher(MatcherRules, func(mc MatcherContext) (match.Matcher, error) {
		cands := make([]rules.Candidate, len(mc.Candidates))
		for i, c := range mc.Candidates {
			cands[i] = rules.Candidate{Pair: c.Pair, Level: c.Level}
		}
		return rules.New(mc.Dataset, cands, mc.Options.Rules)
	})
}
