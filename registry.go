package cem

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/mln"
	emnet "repro/internal/net"
	"repro/internal/rules"
	"repro/match"
)

// MatcherContext is the per-experiment input handed to matcher
// factories: the dataset, the in-scope matching decisions (candidate
// pairs with similarity levels), and the setup options. Factories must
// not mutate the context's slices.
type MatcherContext struct {
	Dataset    *match.Dataset
	Candidates []match.Candidate
	Options    Options
}

// MatcherFactory grounds a black-box matcher for one experiment. The
// returned matcher must satisfy match.Matcher; matchers additionally
// implementing match.Probabilistic unlock the MMP scheme, and
// match.ConditionalDecider unlocks the UB oracle.
type MatcherFactory func(MatcherContext) (match.Matcher, error)

var (
	registryMu sync.RWMutex
	registry   = map[string]MatcherFactory{}
)

// RegisterMatcher makes a matcher available to every Experiment under
// the given name. It is typically called from an init function. It
// panics if name is empty, factory is nil, or name is already
// registered (like database/sql.Register).
func RegisterMatcher(name string, factory MatcherFactory) {
	if err := tryRegisterMatcher(name, factory); err != nil {
		panic("cem: " + err.Error())
	}
}

// tryRegisterMatcher is the error-returning registration path, used for
// matchers that arrive from user input (rules files) rather than init
// functions.
func tryRegisterMatcher(name string, factory MatcherFactory) error {
	if name == "" {
		return fmt.Errorf("RegisterMatcher with empty name")
	}
	if factory == nil {
		return fmt.Errorf("RegisterMatcher with nil factory for %s", name)
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		return fmt.Errorf("matcher %q is already registered", name)
	}
	registry[name] = factory
	return nil
}

// Matchers returns the sorted names of all registered matchers.
func Matchers() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// lookupMatcher resolves a registered factory.
func lookupMatcher(name string) (MatcherFactory, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	f, ok := registry[name]
	return f, ok
}

// NewPoolBackend returns the default execution backend: rounds mapped
// on an in-process worker pool over shared memory, with the worker count
// taken from WithParallelism.
func NewPoolBackend() match.Backend { return core.PoolBackend{} }

// NewShardedBackend returns the shard-partitioned execution backend:
// the cover's neighborhoods are split across k shards (k < 1 means one
// per CPU), each evaluating against a private evidence replica and an
// immutable ground-model snapshot; shards exchange evidence exclusively
// as serialized PairKey-ordered delta batches, never sharing mutable
// state. Output is identical to the pool backend for every k.
func NewShardedBackend(k int) match.Backend { return &core.ShardedBackend{Shards: k} }

// NewShardedNetBackend returns the distributed multi-process execution
// backend ("sharded-net"): a coordinator owning the central reduce plus
// k worker processes speaking the wire codec over framed streams. With
// no addrs the workers are spawned in-process (every byte still crosses
// the codec); addrs attach remote cmd/emworker processes instead, one
// slot per address ("host:port" or "unix:/path.sock"), and k is
// ignored. The coordinator supervises the fleet — heartbeats, round
// deadlines, bounded retries with backoff — and reassigns a dead
// worker's partitions to the survivors, so losing a worker degrades
// throughput but never the output: the result is identical to the pool
// backend for every fleet shape and every fault schedule
// (RunStats.Reassignments and friends record what the supervision
// absorbed).
func NewShardedNetBackend(k int, addrs ...string) match.Backend {
	return &emnet.Backend{Workers: k, Addrs: addrs}
}

// BackendFactory builds an execution backend. shards is the partition
// count for partitioned backends (< 1 means one per CPU); backends
// without partitions ignore it.
type BackendFactory func(shards int) (match.Backend, error)

var (
	backendMu       sync.RWMutex
	backendRegistry = map[string]BackendFactory{}
)

// RegisterBackend makes an execution backend available by name (to
// WithBackend call sites that select backends from configuration, and
// to the emmatch -backend flag). Like RegisterMatcher it panics on an
// empty name, a nil factory, or a duplicate registration.
func RegisterBackend(name string, factory BackendFactory) {
	if name == "" {
		panic("cem: RegisterBackend with empty name")
	}
	if factory == nil {
		panic("cem: RegisterBackend with nil factory for " + name)
	}
	backendMu.Lock()
	defer backendMu.Unlock()
	if _, dup := backendRegistry[name]; dup {
		panic("cem: RegisterBackend called twice for " + name)
	}
	backendRegistry[name] = factory
}

// Backends returns the sorted names of all registered execution
// backends.
func Backends() []string {
	backendMu.RLock()
	defer backendMu.RUnlock()
	names := make([]string, 0, len(backendRegistry))
	for name := range backendRegistry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// NewBackend builds a registered backend by name.
func NewBackend(name string, shards int) (match.Backend, error) {
	backendMu.RLock()
	factory, ok := backendRegistry[name]
	backendMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("cem: unknown backend %q (registered: %v)", name, Backends())
	}
	return factory(shards)
}

// The built-in matchers and backends register through the same public
// path as third-party ones.
func init() {
	RegisterBackend("pool", func(int) (match.Backend, error) {
		return NewPoolBackend(), nil
	})
	RegisterBackend("sharded", func(shards int) (match.Backend, error) {
		return NewShardedBackend(shards), nil
	})
	RegisterBackend("sharded-net", func(shards int) (match.Backend, error) {
		return NewShardedNetBackend(shards), nil
	})
	RegisterMatcher(MatcherMLN, func(mc MatcherContext) (match.Matcher, error) {
		cands := make([]mln.Candidate, len(mc.Candidates))
		for i, c := range mc.Candidates {
			cands[i] = mln.Candidate{Pair: c.Pair, Level: c.Level}
		}
		return mln.New(mc.Dataset, cands, mc.Options.MLNWeights)
	})
	RegisterMatcher(MatcherRules, func(mc MatcherContext) (match.Matcher, error) {
		cands := make([]rules.Candidate, len(mc.Candidates))
		for i, c := range mc.Candidates {
			cands[i] = rules.Candidate{Pair: c.Pair, Level: c.Level}
		}
		return rules.New(mc.Dataset, cands, mc.Options.Rules)
	})
}
