package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// runCompare is the CI regression gate: it diffs the cur run against the
// base run inside file and returns the process exit code. Every
// benchmark tracked by the baseline must still exist and stay within the
// thresholds; new benchmarks in cur are informational only.
func runCompare(file, base, cur string, maxNsPct, maxAllocsPct float64) int {
	raw, err := os.ReadFile(file)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 2
	}
	var f File
	if err := json.Unmarshal(raw, &f); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: parsing %s: %v\n", file, err)
		return 2
	}
	baseRun, ok := f.Runs[base]
	if !ok {
		fmt.Fprintf(os.Stderr, "benchjson: %s has no %q run (labels: %v)\n", file, base, labels(f))
		return 2
	}
	curRun, ok := f.Runs[cur]
	if !ok {
		fmt.Fprintf(os.Stderr, "benchjson: %s has no %q run (labels: %v)\n", file, cur, labels(f))
		return 2
	}

	// Wall-clock ratios only mean something on the same hardware; the
	// allocation gate is deterministic and always binding.
	sameMachine := baseRun.GOOS == curRun.GOOS && baseRun.GOARCH == curRun.GOARCH && baseRun.CPU == curRun.CPU
	if !sameMachine {
		fmt.Printf("note: %q measured on %s/%s (%s), %q on %s/%s (%s) — ns/op regressions are advisory, allocs/op enforced\n",
			base, baseRun.GOOS, baseRun.GOARCH, baseRun.CPU,
			cur, curRun.GOOS, curRun.GOARCH, curRun.CPU)
	}

	curBy := map[string]Result{}
	for _, r := range curRun.Results {
		curBy[r.Package+"/"+r.Name] = r
	}

	violations := 0
	fmt.Printf("%-46s %14s %14s %9s %9s\n", "benchmark ("+base+" → "+cur+")", "ns/op", "allocs/op", "Δns", "Δallocs")
	for _, b := range baseRun.Results {
		key := b.Package + "/" + b.Name
		c, ok := curBy[key]
		if !ok {
			fmt.Printf("%-46s MISSING — tracked benchmark disappeared\n", b.Name)
			violations++
			continue
		}
		dns := pctChange(b.NsPerOp, c.NsPerOp)
		dal := pctChange(b.AllocsOp, c.AllocsOp)
		verdict := ""
		if dns > maxNsPct {
			if sameMachine {
				verdict = "  << ns/op regression"
				violations++
			} else {
				verdict = "  (ns/op drift, advisory)"
			}
		}
		if dal > maxAllocsPct || (b.AllocsOp == 0 && c.AllocsOp > 0) {
			verdict += "  << allocs/op regression"
			violations++
		}
		fmt.Printf("%-46s %7.0f→%6.0f %7.0f→%6.0f %+8.1f%% %+8.1f%%%s\n",
			b.Name, b.NsPerOp, c.NsPerOp, b.AllocsOp, c.AllocsOp, dns, dal, verdict)
	}
	if violations > 0 {
		fmt.Printf("\nFAIL: %d regression(s) beyond thresholds (ns/op > %.0f%%, allocs/op > %.0f%%) against %q\n",
			violations, maxNsPct, maxAllocsPct, base)
		return 1
	}
	fmt.Printf("\nOK: %d tracked benchmarks within thresholds (ns/op ≤ %.0f%%, allocs/op ≤ %.0f%%) against %q\n",
		len(baseRun.Results), maxNsPct, maxAllocsPct, base)
	return 0
}

// pctChange returns the percent increase from base to cur (0 when base
// is 0 — the zero-to-nonzero allocation case is flagged separately).
func pctChange(base, cur float64) float64 {
	if base == 0 {
		return 0
	}
	return (cur - base) / base * 100
}

func labels(f File) []string {
	out := make([]string, 0, len(f.Runs))
	for l := range f.Runs {
		out = append(out, l)
	}
	return out
}
