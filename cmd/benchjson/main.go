// Command benchjson converts `go test -bench` output into the committed
// benchmark-trajectory format (BENCH_<pr>.json): a JSON object mapping
// labels to benchmark result lists. It reads benchmark output on stdin
// and merges the parsed results into the output file under -label,
// preserving any other labels already present — so a "before" snapshot
// survives refreshes of the "current" one.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -o BENCH_4.json -label current
//
// With -compare BASELINE it instead diffs the -label run against the
// BASELINE label already in -o and exits 1 on regression: more than
// -max-ns-regress percent slower (ns/op) or -max-allocs-regress percent
// more allocations on any benchmark tracked by the baseline, or a
// tracked benchmark missing entirely. Allocation counts are
// deterministic, so the allocs gate is enforced unconditionally; ns/op
// is only enforced when both runs were measured on the same
// GOOS/GOARCH/CPU (cross-machine wall-clock ratios are noise, and a
// hard gate on them would flap) and is reported as an advisory
// otherwise.
//
//	benchjson -o BENCH_4.json -compare pr3-baseline
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string  `json:"name"`
	Package    string  `json:"package,omitempty"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	BPerOp     float64 `json:"b_per_op,omitempty"`
	AllocsOp   float64 `json:"allocs_per_op,omitempty"`

	// Extra carries custom ReportMetric values (e.g. blocking-ns/op).
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Run is one labeled benchmark run with the environment it was measured
// on — metadata is per run, so merging a run from another machine never
// relabels a previously committed baseline.
type Run struct {
	GOOS      string   `json:"goos,omitempty"`
	GOARCH    string   `json:"goarch,omitempty"`
	CPU       string   `json:"cpu,omitempty"`
	Generated string   `json:"generated,omitempty"`
	Results   []Result `json:"results"`
}

// File is the on-disk shape of a BENCH_<pr>.json.
type File struct {
	Runs map[string]Run `json:"runs"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

func main() {
	out := flag.String("o", "", "output file (default stdout, no merging)")
	label := flag.String("label", "current", "label to store this run under (or to compare)")
	compare := flag.String("compare", "", "compare mode: diff -label against this baseline label in -o and fail on regression")
	maxNs := flag.Float64("max-ns-regress", 25, "compare: max tolerated ns/op regression, percent")
	maxAllocs := flag.Float64("max-allocs-regress", 10, "compare: max tolerated allocs/op regression, percent")
	flag.Parse()

	if *compare != "" {
		if *out == "" {
			fmt.Fprintln(os.Stderr, "benchjson: -compare requires -o")
			os.Exit(2)
		}
		os.Exit(runCompare(*out, *compare, *label, *maxNs, *maxAllocs))
	}

	results, cpu := parse(os.Stdin)
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	f := &File{Runs: map[string]Run{}}
	if *out != "" {
		if raw, err := os.ReadFile(*out); err == nil {
			if err := json.Unmarshal(raw, f); err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: cannot merge into %s: %v\n", *out, err)
				os.Exit(1)
			}
			if f.Runs == nil {
				f.Runs = map[string]Run{}
			}
		}
	}
	f.Runs[*label] = Run{
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPU:       cpu,
		Generated: time.Now().UTC().Format(time.RFC3339),
		Results:   results,
	}

	enc, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		panic(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

// parse scans go test -bench output, tracking the current package from
// "pkg:" headers.
func parse(src *os.File) (results []Result, cpu string) {
	sc := bufio.NewScanner(src)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = rest
			continue
		}
		if rest, ok := strings.CutPrefix(line, "cpu: "); ok {
			cpu = rest
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		r := Result{Name: m[1], Package: pkg}
		r.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				r.NsPerOp = val
			case "B/op":
				r.BPerOp = val
			case "allocs/op":
				r.AllocsOp = val
			default:
				if strings.HasSuffix(unit, "/op") {
					if r.Extra == nil {
						r.Extra = map[string]float64{}
					}
					r.Extra[unit] = val
				}
			}
		}
		results = append(results, r)
	}
	sort.SliceStable(results, func(i, j int) bool {
		if results[i].Package != results[j].Package {
			return results[i].Package < results[j].Package
		}
		return results[i].Name < results[j].Name
	})
	return results, cpu
}
