// Command emgen generates the synthetic bibliography corpora used by the
// experiments (HEPTH-like, DBLP-like, DBLP-BIG-like) and prints their
// statistics, optionally writing the dataset in the TSV format understood
// by emmatch.
//
// Usage:
//
//	emgen -kind hepth -scale 1.0 -seed 42 -out hepth.tsv
//	emgen -kind dblp -stats
//	emgen -kind dblp -records -out records.tsv   (raw records for emmatch -records)
package main

import (
	"flag"
	"fmt"
	"os"

	cem "repro"
	"repro/internal/bib"
	"repro/internal/canopy"
)

func main() {
	var (
		kind    = flag.String("kind", "hepth", "corpus kind: hepth | dblp | dblp-big | million | people")
		scale   = flag.Float64("scale", 1.0, "size multiplier (1.0 ≈ a few thousand references)")
		seed    = flag.Int64("seed", 42, "generation seed (deterministic output)")
		out     = flag.String("out", "", "output file (default: stdout; - for stdout)")
		stats   = flag.Bool("stats", false, "print dataset and cover statistics instead of the dataset")
		records = flag.Bool("records", false, "write raw records (for emmatch -records) instead of the dataset")
	)
	flag.Parse()

	d, err := cem.GenerateDataset(cem.DatasetKind(*kind), *scale, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "emgen: %v\n", err)
		os.Exit(2)
	}

	if *stats {
		fmt.Printf("dataset %s: %s\n", d.Name, d.ComputeStats())
		cover := canopy.BuildCover(d, canopy.DefaultConfig())
		fmt.Printf("cover: %s\n", cover.ComputeStats())
		fmt.Printf("candidate pairs: %d\n", len(canopy.CandidatePairs(d, cover)))
		return
	}

	w := os.Stdout
	if *out != "" && *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "emgen: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "emgen: close: %v\n", err)
				os.Exit(1)
			}
		}()
		w = f
	}
	if *records {
		if err := bib.WriteRecords(w, d.Name, bib.ToRecords(d)); err != nil {
			fmt.Fprintf(os.Stderr, "emgen: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := bib.Write(w, d); err != nil {
		fmt.Fprintf(os.Stderr, "emgen: %v\n", err)
		os.Exit(1)
	}
}
