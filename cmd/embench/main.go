// Command embench regenerates the paper's evaluation: every figure and
// table of §6 and Appendix C, on synthetic corpora mirroring HEPTH, DBLP
// and DBLP-BIG.
//
// Usage:
//
//	embench                      # run everything at the default scale
//	embench -exp fig3a           # one experiment
//	embench -scale 1.0 -seed 7   # bigger corpus, different seed
//	embench -machines 30         # grid width for table1
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

var runners = map[string]func(experiments.Config) (*experiments.Table, error){
	"fig3a":    experiments.Fig3a,
	"fig3b":    experiments.Fig3b,
	"fig3c":    experiments.Fig3c,
	"fig3d":    experiments.Fig3d,
	"fig3e":    experiments.Fig3e,
	"fig3f":    experiments.Fig3f,
	"table1":   experiments.Table1,
	"fig4a":    experiments.Fig4a,
	"fig4b":    experiments.Fig4b,
	"fig4c":    experiments.Fig4c,
	"ablation": experiments.AblationCover,
	"learning": experiments.LearnedWeights,
	"scaling":  experiments.Scaling,
}

var order = []string{
	"fig3a", "fig3b", "fig3c", "fig3d", "fig3e", "fig3f",
	"table1", "fig4a", "fig4b", "fig4c", "ablation", "learning", "scaling",
}

func main() {
	cfg := experiments.Default()
	var (
		exp      = flag.String("exp", "all", "experiment id: all | fig3a..fig3f | table1 | fig4a..fig4c")
		scale    = flag.Float64("scale", cfg.Scale, "corpus scale multiplier")
		seed     = flag.Int64("seed", cfg.Seed, "generation seed")
		machines = flag.Int("machines", cfg.Machines, "simulated grid machines (table1)")
		overhead = flag.Duration("overhead", cfg.RoundOverhead, "per-round grid scheduling overhead (table1)")
		exponent = flag.Float64("cost-exponent", cfg.CostExponent, "modeled inference-cost exponent")
		steps    = flag.Int("fig3f-steps", cfg.Fig3fSteps, "prefix steps in fig3f")
		parallel = flag.Int("parallel", cfg.Parallelism, "concurrent neighborhood evaluations (wall times reflect it; modeled costs do not)")
	)
	flag.Parse()
	cfg.Scale = *scale
	cfg.Seed = *seed
	cfg.Machines = *machines
	cfg.RoundOverhead = *overhead
	cfg.CostExponent = *exponent
	cfg.Fig3fSteps = *steps
	cfg.Parallelism = *parallel

	ids := order
	if *exp != "all" {
		if _, ok := runners[*exp]; !ok {
			fmt.Fprintf(os.Stderr, "embench: unknown experiment %q (want one of %v or all)\n", *exp, order)
			os.Exit(2)
		}
		ids = []string{*exp}
	}
	for _, id := range ids {
		start := time.Now()
		table, err := runners[id](cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "embench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(table)
		fmt.Printf("(%s regenerated in %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
