package main

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// TestEmloadEmbeddedPass: the self-contained harness — embedded server,
// concurrent writers and readers, journal-vs-cold verification — ends
// in PASS on a small corpus.
func TestEmloadEmbeddedPass(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-writers", "3", "-readers", "2", "-batch", "64", "-kind", "hepth", "-scale", "0.25"},
		&out, io.Discard)
	if err != nil {
		t.Fatalf("emload failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "PASS") || !strings.Contains(out.String(), "byte-identical") {
		t.Errorf("no verified PASS in output:\n%s", out.String())
	}
}

// TestEmloadBadFlags: invalid load shapes are rejected.
func TestEmloadBadFlags(t *testing.T) {
	if err := run([]string{"-writers", "0"}, io.Discard, io.Discard); err == nil {
		t.Error("zero writers accepted")
	}
	if err := run([]string{"-kind", "nope"}, io.Discard, io.Discard); err == nil {
		t.Error("unknown corpus kind accepted")
	}
}
