// Command emload is the load harness for emserve: k concurrent writers
// stream a generated corpus into the service while m readers hammer the
// snapshot endpoints, then the run is verified — every record accepted
// exactly once (none lost, none duplicated) and, when the journal is
// reachable, the served match set byte-identical to an offline cold run
// over the journaled arrival order.
//
// With no -url it starts an embedded emserve on a temporary state
// directory, so one invocation is a self-contained end-to-end check:
//
//	emload -writers 8 -readers 4 -kind hepth -scale 0.5
//	emload -url http://127.0.0.1:8080 -journal /var/lib/emserve/journal
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	cem "repro"
	"repro/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "emload: %v\n", err)
		os.Exit(1)
	}
}

// run is the testable entry point.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("emload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		target  = fs.String("url", "", "emserve base URL; empty starts an embedded service")
		journal = fs.String("journal", "", "the server's journal directory, for the cold-run comparison (automatic when embedded)")
		writers = fs.Int("writers", 4, "concurrent writers")
		readers = fs.Int("readers", 4, "concurrent readers")
		batch   = fs.Int("batch", 32, "records per POST")
		kind    = fs.String("kind", "hepth", "generated corpus kind: hepth | dblp | dblp-big | million")
		scale   = fs.Float64("scale", 0.25, "generated corpus scale")
		seed    = fs.Int64("seed", 42, "generation seed")
		matcher = fs.String("matcher", "mln", "matcher (must match the target server's)")
		scheme  = fs.String("scheme", "smp", "scheme (must match the target server's)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *writers < 1 || *readers < 0 || *batch < 1 {
		return fmt.Errorf("need -writers >= 1, -readers >= 0, -batch >= 1")
	}

	records, err := cem.GenerateRecords(cem.DatasetKind(*kind), *scale, *seed)
	if err != nil {
		return err
	}

	base := *target
	if base == "" {
		state, err := os.MkdirTemp("", "emload-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(state)
		svc, err := serve.New(context.Background(), serve.Config{
			Matcher: *matcher, Scheme: cem.Scheme(*scheme), StateDir: state,
			Batching: serve.BatcherConfig{MaxDelay: 20 * time.Millisecond},
		})
		if err != nil {
			return err
		}
		srv := httptest.NewServer(svc)
		defer srv.Close()
		defer svc.Kill()
		base = srv.URL
		*journal = filepath.Join(state, "journal")
		fmt.Fprintf(stderr, "emload: embedded emserve at %s (state %s)\n", base, state)
	}

	fmt.Fprintf(stdout, "emload: %d records, %d writers x %d-record batches, %d readers\n",
		len(records), *writers, *batch, *readers)
	start := time.Now()
	var (
		posted, reads, readMisses, torn atomic.Int64
		wg, rg                          sync.WaitGroup
		werrs                           = make(chan error, *writers)
		stopReaders                     = make(chan struct{})
	)

	// Writers: the corpus is split into contiguous shares, one per
	// writer; each share streams in -batch sized POSTs with ?wait=1, so
	// a writer's completion means its records are committed.
	share := (len(records) + *writers - 1) / *writers
	for w := 0; w < *writers; w++ {
		lo := w * share
		if lo >= len(records) {
			break
		}
		hi := min(lo+share, len(records))
		wg.Add(1)
		go func(part []cem.Record, id int) {
			defer wg.Done()
			for len(part) > 0 {
				n := min(*batch, len(part))
				var body bytes.Buffer
				if err := cem.WriteRecords(&body, fmt.Sprintf("writer-%d", id), part[:n]); err != nil {
					werrs <- err
					return
				}
				resp, err := http.Post(base+"/records?wait=1", "text/tab-separated-values", &body)
				if err != nil {
					werrs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					werrs <- fmt.Errorf("writer %d: POST /records: status %d", id, resp.StatusCode)
					return
				}
				posted.Add(int64(n))
				part = part[n:]
			}
		}(records[lo:hi], w)
	}

	// Readers: random snapshot lookups plus periodic /matches dumps,
	// each response checked for internal consistency (a torn snapshot
	// would show a match count disagreeing with its own pair lines).
	for r := 0; r < *readers; r++ {
		rg.Add(1)
		go func(id int) {
			defer rg.Done()
			rng := rand.New(rand.NewSource(int64(id)))
			for {
				select {
				case <-stopReaders:
					return
				default:
				}
				reads.Add(1)
				if rng.Intn(8) == 0 {
					resp, err := http.Get(base + "/matches")
					if err != nil {
						continue
					}
					body, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					var n int
					if _, err := fmt.Sscanf(string(body), "# %d matches", &n); err != nil ||
						strings.Count(string(body), "\n") != n+1 {
						torn.Add(1)
					}
					continue
				}
				key := records[rng.Intn(len(records))].RecordKey()
				path := "/records/"
				if rng.Intn(2) == 0 {
					path = "/cluster/"
				}
				resp, err := http.Get(base + path + url.PathEscape(key))
				if err != nil {
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusNotFound {
					readMisses.Add(1) // not yet committed: expected early on
				}
			}
		}(r)
	}

	wg.Wait()
	close(stopReaders)
	rg.Wait()
	close(werrs)
	for err := range werrs {
		return err
	}
	elapsed := time.Since(start)

	// Verification 1: zero lost, zero duplicated. Every writer's waited
	// POSTs committed, so the served state must hold exactly the corpus.
	srvStats, dump, err := fetchState(base)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "emload: %d posted in %v, %d reads (%d early misses), server at seq %d with %d records\n",
		posted.Load(), elapsed.Round(time.Millisecond), reads.Load(), readMisses.Load(), srvStats.Seq, srvStats.Records)
	if torn.Load() > 0 {
		return fmt.Errorf("FAIL: %d torn /matches responses (snapshot isolation broken)", torn.Load())
	}
	if posted.Load() != int64(len(records)) || srvStats.Records != len(records) {
		return fmt.Errorf("FAIL: posted %d of %d records, server holds %d (lost or duplicated records)",
			posted.Load(), len(records), srvStats.Records)
	}

	// Verification 2: the served match set is byte-identical to an
	// offline cold run over the journaled arrival order.
	if *journal == "" {
		fmt.Fprintln(stdout, "emload: PASS (no -journal: cold-run comparison skipped)")
		return nil
	}
	arrival, err := readJournal(*journal)
	if err != nil {
		return err
	}
	if len(arrival) != len(records) {
		return fmt.Errorf("FAIL: journal holds %d records for %d posted", len(arrival), len(records))
	}
	pipe, err := cem.NewPipeline(
		cem.WithDatasetName("emload-cold"),
		cem.WithMatcher(*matcher),
		cem.WithScheme(cem.Scheme(*scheme)),
	)
	if err != nil {
		return err
	}
	cold, err := pipe.Run(context.Background(), arrival)
	if err != nil {
		return err
	}
	var want bytes.Buffer
	pairs := cold.Matches.Sorted()
	fmt.Fprintf(&want, "# %d matches\n", len(pairs))
	for _, p := range pairs {
		fmt.Fprintf(&want, "%d %d\n", p.A, p.B)
	}
	if dump != want.String() {
		return fmt.Errorf("FAIL: served matches diverge from the offline cold run over the arrival order (%d vs %d bytes)",
			len(dump), want.Len())
	}
	fmt.Fprintf(stdout, "emload: PASS (%d matches byte-identical to the offline cold run)\n", len(pairs))
	return nil
}

// loadStats is the subset of /stats emload verifies.
type loadStats struct {
	Seq     int `json:"seq"`
	Records int `json:"records"`
}

// fetchState grabs the final /stats and /matches documents.
func fetchState(base string) (loadStats, string, error) {
	var st loadStats
	resp, err := http.Get(base + "/stats")
	if err != nil {
		return st, "", err
	}
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		return st, "", err
	}
	resp, err = http.Get(base + "/matches")
	if err != nil {
		return st, "", err
	}
	dump, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	return st, string(dump), err
}

// readJournal concatenates the journaled batches in commit order — the
// service's authoritative arrival order.
func readJournal(dir string) ([]cem.Record, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "batch-*.tsv"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("journal %s holds no batches", dir)
	}
	sort.Strings(paths)
	var all []cem.Record
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return nil, err
		}
		_, recs, rerr := cem.ReadRecords(f)
		f.Close()
		if rerr != nil {
			return nil, fmt.Errorf("%s: %w", p, rerr)
		}
		all = append(all, recs...)
	}
	return all, nil
}
