// Command emserve runs the online matching service: an HTTP server over
// the incremental pipeline (internal/serve). Records POSTed to /records
// are coalesced into delta batches and applied through Pipeline.Update;
// reads (/records/{key}, /cluster/{key}, /matches, /stats) are served
// from the last committed snapshot while updates run. With -state-dir
// the service journals every accepted batch and checkpoints every
// matching round, so SIGTERM (graceful drain) or even a kill restarts
// into the identical state. Adding -store disk keeps the accumulated
// match state in a disk-backed segment store under the state directory:
// every commit saves a reopenable snapshot, and a restart reopens it
// with zero matcher work instead of replaying the journal. /metrics
// speaks the Prometheus text format.
//
// Usage:
//
//	emserve -addr 127.0.0.1:8080 -state-dir /var/lib/emserve
//	emserve -state-dir /var/lib/emserve -store disk
//	emserve -scheme smp -matcher mln -max-batch 512 -max-delay 100ms
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	cem "repro"
	"repro/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr, nil, nil); err != nil {
		fmt.Fprintf(os.Stderr, "emserve: %v\n", err)
		os.Exit(1)
	}
}

// run is the testable entry point. sigs overrides the OS signal channel
// (nil installs SIGINT/SIGTERM); ready, when non-nil, receives the bound
// listen address once the server accepts connections.
func run(args []string, stdout, stderr io.Writer, sigs chan os.Signal, ready chan<- string) error {
	fs := flag.NewFlagSet("emserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "127.0.0.1:8080", "listen address")
		state    = fs.String("state", "", "durable state directory (journal + checkpoints + store); empty = ephemeral")
		stName   = fs.String("store", "", "storage backend under <state>/store: "+strings.Join(cem.Stores(), " | ")+"; empty = journal/checkpoint recovery only")
		matcher  = fs.String("matcher", "mln", "matcher: "+strings.Join(cem.Matchers(), " | "))
		scheme   = fs.String("scheme", "smp", "scheme: nomp | smp | mmp (incremental path required)")
		shards   = fs.Int("shards", 0, "blocking shards for the cold first batch (0 = one per CPU)")
		maxNbr   = fs.Int("max-neighborhood", 0, "canopy size bound (0 = unbounded)")
		parallel = fs.Int("parallel", 1, "concurrent neighborhood evaluations")
		dataset  = fs.String("dataset", "emserve", "dataset name reported in snapshots")
		rulesF   = fs.String("rules-file", "", "declarative rules program; compiles and registers it, selecting it as the matcher")
		maxBatch = fs.Int("max-batch", 256, "flush a batch once it holds this many records")
		maxDelay = fs.Duration("max-delay", 200*time.Millisecond, "flush a batch once its oldest record waited this long")
		queueCap = fs.Int("queue-cap", 64, "queued ingest requests before producers block (backpressure)")
		drain    = fs.Duration("drain-timeout", time.Minute, "graceful-shutdown bound; an overrunning drain is aborted (the journal recovers it)")
	)
	fs.StringVar(state, "state-dir", "", "alias of -state")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *stName == "mem" {
		return fmt.Errorf("-store mem persists nothing across restarts; drop -store (journal/checkpoint recovery) or use -store disk")
	}
	if *stName != "" && *state == "" {
		return fmt.Errorf("-store %s requires -state-dir", *stName)
	}
	if *rulesF != "" {
		name, err := cem.LoadRulesFile(*rulesF)
		if err != nil {
			return err
		}
		matcherSet := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "matcher" {
				matcherSet = true
			}
		})
		if matcherSet && *matcher != name {
			return fmt.Errorf("-rules-file program is named %q but -matcher asks for %q; drop -matcher or make the names agree", name, *matcher)
		}
		*matcher = name
	}
	switch cem.Scheme(*scheme) {
	case cem.SchemeNoMP, cem.SchemeSMP, cem.SchemeMMP:
	default:
		return fmt.Errorf("scheme %q has no incremental path (need nomp, smp or mmp)", *scheme)
	}

	svc, err := serve.New(context.Background(), serve.Config{
		Matcher:         *matcher,
		Scheme:          cem.Scheme(*scheme),
		Shards:          *shards,
		MaxNeighborhood: *maxNbr,
		Parallelism:     *parallel,
		DatasetName:     *dataset,
		StateDir:        *state,
		Store:           *stName,
		Batching: serve.BatcherConfig{
			MaxBatch: *maxBatch,
			MaxDelay: *maxDelay,
			QueueCap: *queueCap,
		},
		Logf: func(format string, a ...any) { fmt.Fprintf(stderr, "emserve: "+format+"\n", a...) },
	})
	if err != nil {
		return err
	}
	if snap := svc.Snapshot(); snap.Seq > 0 {
		fmt.Fprintf(stderr, "emserve: recovered seq %d (%d records, %d matches) from %s\n",
			snap.Seq, snap.Records(), snap.Matches(), *state)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stderr, "emserve: listening on %s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	srv := &http.Server{Handler: svc}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	if sigs == nil {
		sigs = make(chan os.Signal, 1)
		signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
		defer signal.Stop(sigs)
	}
	select {
	case sig := <-sigs:
		fmt.Fprintf(stderr, "emserve: %v: draining\n", sig)
	case err := <-serveErr:
		svc.Kill()
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(stderr, "emserve: http shutdown: %v\n", err)
	}
	if err := svc.Shutdown(ctx); err != nil {
		return err
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	snap := svc.Snapshot()
	fmt.Fprintf(stdout, "emserve: drained at seq %d (%d records, %d matches)\n",
		snap.Seq, snap.Records(), snap.Matches())
	return nil
}
