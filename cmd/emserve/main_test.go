package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	cem "repro"
)

// startServer runs the binary's entry point on an ephemeral port and
// returns its base URL plus channels to signal and join it.
func startServer(t *testing.T, state string) (base string, sigs chan os.Signal, errc chan error, out *bytes.Buffer) {
	t.Helper()
	sigs = make(chan os.Signal, 1)
	ready := make(chan string, 1)
	errc = make(chan error, 1)
	out = &bytes.Buffer{}
	go func() {
		errc <- run([]string{"-addr", "127.0.0.1:0", "-state", state, "-max-delay", "5ms"},
			out, io.Discard, sigs, ready)
	}()
	select {
	case addr := <-ready:
		return "http://" + addr, sigs, errc, out
	case err := <-errc:
		t.Fatalf("server did not start: %v", err)
		return "", nil, nil, nil
	}
}

// TestEmserveSIGTERMRestart is the binary-level lifecycle test: serve,
// ingest, SIGTERM (graceful drain), restart on the same state dir, and
// observe the identical committed state.
func TestEmserveSIGTERMRestart(t *testing.T) {
	records, err := cem.GenerateRecords(cem.HEPTH, 0.25, 42)
	if err != nil {
		t.Fatal(err)
	}
	state := t.TempDir()
	base, sigs, errc, out := startServer(t, state)

	var body bytes.Buffer
	if err := cem.WriteRecords(&body, "load", records); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/records?wait=1", "text/tab-separated-values", &body)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /records: status %d", resp.StatusCode)
	}
	want := fetchStats(t, base)
	if want.Records != len(records) || want.Seq != 1 {
		t.Fatalf("server stats %+v, want seq 1 over %d records", want, len(records))
	}

	sigs <- syscall.SIGTERM
	if err := <-errc; err != nil {
		t.Fatalf("SIGTERM shutdown: %v", err)
	}
	if !strings.Contains(out.String(), "drained at seq 1") {
		t.Errorf("shutdown report missing drain line: %q", out.String())
	}
	if m, _ := filepath.Glob(filepath.Join(state, "checkpoint", "round-*.ckpt")); len(m) == 0 {
		t.Error("clean shutdown left no checkpoint trail")
	}
	if m, _ := filepath.Glob(filepath.Join(state, "journal", "batch-*.tsv")); len(m) == 0 {
		t.Error("clean shutdown left no journal")
	}

	base2, sigs2, errc2, _ := startServer(t, state)
	got := fetchStats(t, base2)
	if got.Seq != want.Seq || got.Records != want.Records || got.MatchPairs != want.MatchPairs {
		t.Errorf("restarted stats %+v, want %+v", got, want)
	}
	sigs2 <- syscall.SIGTERM
	if err := <-errc2; err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

type srvStats struct {
	Seq        int `json:"seq"`
	Records    int `json:"records"`
	MatchPairs int `json:"match_pairs"`
}

func fetchStats(t *testing.T, base string) srvStats {
	t.Helper()
	resp, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st srvStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestEmserveBadFlags: flag validation errors surface instead of
// hanging the server.
func TestEmserveBadFlags(t *testing.T) {
	if err := run([]string{"-scheme", "full"}, io.Discard, io.Discard, nil, nil); err == nil {
		t.Error("a scheme without an incremental path was accepted")
	}
	if err := run([]string{"-addr", "256.0.0.1:bad"}, io.Discard, io.Discard, nil, nil); err == nil {
		t.Error("an unparseable listen address was accepted")
	}
	if err := run([]string{"-matcher", "nope"}, io.Discard, io.Discard, nil, nil); err == nil {
		t.Error("an unknown matcher was accepted (the server would never commit a batch)")
	}
}

// TestEmserveRejectsUnknownFlag keeps the flag surface honest.
func TestEmserveRejectsUnknownFlag(t *testing.T) {
	var stderr bytes.Buffer
	if err := run([]string{"-no-such-flag"}, io.Discard, &stderr, nil, nil); err == nil {
		t.Error("unknown flag accepted")
	}
	if !strings.Contains(stderr.String(), "Usage") && !strings.Contains(stderr.String(), "flag") {
		t.Errorf("no usage on bad flag: %q", stderr.String())
	}
}
