package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	cem "repro"
)

// startServer runs the binary's entry point on an ephemeral port and
// returns its base URL plus channels to signal and join it.
func startServer(t *testing.T, state string) (base string, sigs chan os.Signal, errc chan error, out *bytes.Buffer) {
	t.Helper()
	sigs = make(chan os.Signal, 1)
	ready := make(chan string, 1)
	errc = make(chan error, 1)
	out = &bytes.Buffer{}
	go func() {
		errc <- run([]string{"-addr", "127.0.0.1:0", "-state", state, "-max-delay", "5ms"},
			out, io.Discard, sigs, ready)
	}()
	select {
	case addr := <-ready:
		return "http://" + addr, sigs, errc, out
	case err := <-errc:
		t.Fatalf("server did not start: %v", err)
		return "", nil, nil, nil
	}
}

// TestEmserveSIGTERMRestart is the binary-level lifecycle test: serve,
// ingest, SIGTERM (graceful drain), restart on the same state dir, and
// observe the identical committed state.
func TestEmserveSIGTERMRestart(t *testing.T) {
	records, err := cem.GenerateRecords(cem.HEPTH, 0.25, 42)
	if err != nil {
		t.Fatal(err)
	}
	state := t.TempDir()
	base, sigs, errc, out := startServer(t, state)

	var body bytes.Buffer
	if err := cem.WriteRecords(&body, "load", records); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/records?wait=1", "text/tab-separated-values", &body)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /records: status %d", resp.StatusCode)
	}
	want := fetchStats(t, base)
	if want.Records != len(records) || want.Seq != 1 {
		t.Fatalf("server stats %+v, want seq 1 over %d records", want, len(records))
	}

	sigs <- syscall.SIGTERM
	if err := <-errc; err != nil {
		t.Fatalf("SIGTERM shutdown: %v", err)
	}
	if !strings.Contains(out.String(), "drained at seq 1") {
		t.Errorf("shutdown report missing drain line: %q", out.String())
	}
	if m, _ := filepath.Glob(filepath.Join(state, "checkpoint", "round-*.ckpt")); len(m) == 0 {
		t.Error("clean shutdown left no checkpoint trail")
	}
	if m, _ := filepath.Glob(filepath.Join(state, "journal", "batch-*.tsv")); len(m) == 0 {
		t.Error("clean shutdown left no journal")
	}

	base2, sigs2, errc2, _ := startServer(t, state)
	got := fetchStats(t, base2)
	if got.Seq != want.Seq || got.Records != want.Records || got.MatchPairs != want.MatchPairs {
		t.Errorf("restarted stats %+v, want %+v", got, want)
	}
	sigs2 <- syscall.SIGTERM
	if err := <-errc2; err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

type srvStats struct {
	Seq        int `json:"seq"`
	Records    int `json:"records"`
	MatchPairs int `json:"match_pairs"`
}

func fetchStats(t *testing.T, base string) srvStats {
	t.Helper()
	resp, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st srvStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestEmserveBadFlags: flag validation errors surface instead of
// hanging the server.
func TestEmserveBadFlags(t *testing.T) {
	if err := run([]string{"-scheme", "full"}, io.Discard, io.Discard, nil, nil); err == nil {
		t.Error("a scheme without an incremental path was accepted")
	}
	if err := run([]string{"-addr", "256.0.0.1:bad"}, io.Discard, io.Discard, nil, nil); err == nil {
		t.Error("an unparseable listen address was accepted")
	}
	if err := run([]string{"-matcher", "nope"}, io.Discard, io.Discard, nil, nil); err == nil {
		t.Error("an unknown matcher was accepted (the server would never commit a batch)")
	}
}

// TestEmserveStoreFlagValidation pins the store flag combinations that
// cannot deliver what they promise.
func TestEmserveStoreFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"disk store without state dir",
			[]string{"-store", "disk"},
			"requires -state-dir"},
		{"mem store never persists",
			[]string{"-store", "mem", "-state-dir", t.TempDir()},
			"persists nothing"},
		{"mem store without state dir",
			[]string{"-store", "mem"},
			"persists nothing"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args, io.Discard, io.Discard, nil, nil)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want error containing %q", tc.args, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("run(%v) = %v, want error containing %q", tc.args, err, tc.want)
			}
		})
	}
}

// TestEmserveRulesFile: -rules-file programs the service's matcher; a
// contradicting -matcher is rejected.
func TestEmserveRulesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "prog.rules")
	if err := os.WriteFile(path, []byte("program srv-prog\nmatch level 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-rules-file", path, "-matcher", "mln"}, io.Discard, io.Discard, nil, nil)
	if err == nil || !strings.Contains(err.Error(), `-matcher asks for "mln"`) {
		t.Fatalf("conflicting -matcher not rejected: %v", err)
	}
	// With no -matcher the program is selected; a bad listen address
	// then fails past matcher resolution, proving the program loaded.
	// (The registry is process-global, so this run needs its own
	// program name.)
	path2 := filepath.Join(t.TempDir(), "prog2.rules")
	if err := os.WriteFile(path2, []byte("program srv-prog2\nmatch level 3\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err = run([]string{"-rules-file", path2, "-addr", "256.0.0.1:bad"}, io.Discard, io.Discard, nil, nil)
	if err == nil || strings.Contains(err.Error(), "rules") {
		t.Fatalf("rules-file service did not reach the listen stage: %v", err)
	}
}

// TestEmserveRejectsUnknownFlag keeps the flag surface honest.
func TestEmserveRejectsUnknownFlag(t *testing.T) {
	var stderr bytes.Buffer
	if err := run([]string{"-no-such-flag"}, io.Discard, &stderr, nil, nil); err == nil {
		t.Error("unknown flag accepted")
	}
	if !strings.Contains(stderr.String(), "Usage") && !strings.Contains(stderr.String(), "flag") {
		t.Errorf("no usage on bad flag: %q", stderr.String())
	}
}
