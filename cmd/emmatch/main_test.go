package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	cem "repro"
)

// runQuiet drives run with discard-able buffers and returns the error.
func runQuiet(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var out, errBuf strings.Builder
	err := run(args, &out, &errBuf)
	return out.String(), err
}

// TestFlagValidation pins the CLI's argument checks: the combinations
// that cannot mean anything must fail fast with a clear error instead of
// running a half-configured job.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string // substring of the expected error
	}{
		{"resume without checkpoint dir",
			[]string{"-resume"},
			"-resume requires -checkpoint-dir"},
		{"backend shards without backend",
			[]string{"-backend-shards", "4"},
			"-backend-shards requires -backend sharded"},
		{"backend shards with pool backend",
			[]string{"-backend", "pool", "-backend-shards", "4"},
			"-backend-shards requires -backend sharded"},
		{"in and records together",
			[]string{"-in", "a.tsv", "-records", "b.tsv"},
			"mutually exclusive"},
		{"records and ingest together",
			[]string{"-records", "b.tsv", "-ingest", "c.tsv"},
			"mutually exclusive"},
		{"ingest with resume",
			[]string{"-ingest", "a.tsv,b.tsv", "-checkpoint-dir", "x", "-resume"},
			"cannot be combined with -resume"},
		{"unknown flag",
			[]string{"-no-such-flag"},
			"flag provided but not defined"},
		{"disk store without state dir",
			[]string{"-store", "disk"},
			"-store disk requires -state-dir"},
		{"state dir with mem store",
			[]string{"-store", "mem", "-state-dir", "x"},
			"-state-dir is meaningless with -store mem"},
		{"state dir without store",
			[]string{"-state-dir", "x"},
			"-state-dir requires -store"},
		{"missing rules file",
			[]string{"-rules-file", "no-such-file.rules"},
			"reading rules file"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := runQuiet(t, tc.args...); err == nil {
				t.Fatalf("run(%v) succeeded, want error containing %q", tc.args, tc.want)
			} else if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("run(%v) = %v, want error containing %q", tc.args, err, tc.want)
			}
		})
	}
}

// writeRulesFile drops a rules program into a temp file. Each test uses
// a distinct program name: the registry is process-global.
func writeRulesFile(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.rules")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRulesFileMatcherConflict: -rules-file selects the program as the
// matcher; an explicitly contradicting -matcher must be rejected, an
// agreeing one accepted.
func TestRulesFileMatcherConflict(t *testing.T) {
	path := writeRulesFile(t, "program cli-conflict\nmatch level 3\n")
	if _, err := runQuiet(t, "-rules-file", path, "-matcher", "mln"); err == nil {
		t.Fatal("conflicting -matcher accepted")
	} else if !strings.Contains(err.Error(), `named "cli-conflict" but -matcher asks for "mln"`) {
		t.Fatalf("conflict error = %v", err)
	}
	// A bad program surfaces its position.
	bad := writeRulesFile(t, "program cli-bad\nmatch level\n")
	if _, err := runQuiet(t, "-rules-file", bad); err == nil {
		t.Fatal("malformed rules file accepted")
	} else if !strings.Contains(err.Error(), "2:") {
		t.Fatalf("compile error carries no position: %v", err)
	}
}

// TestRulesFileEndToEnd drives the people corpus through the binary's
// classic path programmed only by a rules file.
func TestRulesFileEndToEnd(t *testing.T) {
	path := writeRulesFile(t, `program cli-people
fields name, street, phone, zip
level 3 when phone equal
level 2 when name jaro >= 0.85 and zip equal
match level 3
match level 2
`)
	out, err := runQuiet(t, "-kind", "people", "-scale", "0.1", "-rules-file", path, "-scheme", "smp")
	if err != nil {
		t.Fatalf("people run: %v", err)
	}
	if !strings.Contains(out, "dataset people-like") {
		t.Errorf("report lacks the dataset line:\n%s", out)
	}
	if !strings.Contains(out, "P=") {
		t.Errorf("report lacks metrics:\n%s", out)
	}
}

// writeBatches splits a generated corpus into record TSV batch files.
func writeBatches(t *testing.T, dir string, cuts ...float64) []string {
	t.Helper()
	records, err := cem.GenerateRecords(cem.DBLP, 0.1, 7)
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	lo := 0
	for i, frac := range cuts {
		hi := int(frac * float64(len(records)))
		if i == len(cuts)-1 {
			hi = len(records)
		}
		path := filepath.Join(dir, "batch"+string(rune('1'+i))+".tsv")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := cem.WriteRecords(f, "dblp-stream", records[lo:hi]); err != nil {
			t.Fatal(err)
		}
		f.Close()
		paths = append(paths, path)
		lo = hi
	}
	return paths
}

// TestIngestReplaysStream runs the -ingest mode end to end on a real
// (small) corpus split into three batches and checks the per-batch
// reports and the final match count against a cold pipeline run.
func TestIngestReplaysStream(t *testing.T) {
	paths := writeBatches(t, t.TempDir(), 0.6, 0.8, 1.0)
	out, err := runQuiet(t, "-ingest", strings.Join(paths, ","), "-scheme", "smp", "-v")
	if err != nil {
		t.Fatalf("ingest run: %v", err)
	}
	for _, want := range []string{"batch 1/3", "batch 2/3", "batch 3/3", "[cold]"} {
		if !strings.Contains(out, want) {
			t.Errorf("ingest output lacks %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "[warm]") && !strings.Contains(out, "full re-run") {
		t.Errorf("ingest output reports no incremental batches:\n%s", out)
	}
	if !strings.Contains(out, "cumulative: 3 updates (1 cold,") {
		t.Errorf("-v output lacks the cumulative pipeline counters:\n%s", out)
	}

	// The stream must land on the cold pipeline's match count.
	records, err := cem.GenerateRecords(cem.DBLP, 0.1, 7)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := cem.NewPipeline(cem.WithScheme(cem.SchemeSMP), cem.WithDatasetName("dblp-stream"))
	if err != nil {
		t.Fatal(err)
	}
	cold, err := pipe.Run(context.Background(), records)
	if err != nil {
		t.Fatal(err)
	}
	wantLine := "records, " + itoa(cold.Matches.Len()) + " matches"
	lines := strings.Split(out, "\n")
	final := ""
	for _, l := range lines {
		if strings.HasPrefix(l, "batch 3/3") {
			final = l
		}
	}
	if !strings.Contains(final, wantLine) {
		t.Errorf("final batch line %q does not carry the cold match count (%d)", final, cold.Matches.Len())
	}
}

// TestIngestRejectsMissingFile: a bad batch path fails cleanly.
func TestIngestRejectsMissingFile(t *testing.T) {
	if _, err := runQuiet(t, "-ingest", "no-such-file.tsv"); err == nil {
		t.Fatal("ingest of a missing file succeeded")
	}
	if _, err := runQuiet(t, "-ingest", " , "); err == nil {
		t.Fatal("ingest of empty paths succeeded")
	}
}

// itoa avoids importing strconv for one call site.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
