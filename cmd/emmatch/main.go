// Command emmatch runs one message-passing scheme with one matcher on a
// dataset (read from a TSV file produced by emgen, or generated on the
// fly) and prints the evaluation report.
//
// Usage:
//
//	emmatch -in hepth.tsv -scheme mmp -matcher mln
//	emmatch -kind dblp -scale 0.5 -scheme smp -matcher rules -closure
package main

import (
	"flag"
	"fmt"
	"os"

	cem "repro"
	"repro/internal/bib"
)

func main() {
	var (
		in      = flag.String("in", "", "dataset TSV file (from emgen); empty to generate")
		kind    = flag.String("kind", "hepth", "generated corpus kind: hepth | dblp | dblp-big")
		scale   = flag.Float64("scale", 0.5, "generated corpus scale")
		seed    = flag.Int64("seed", 42, "generation seed")
		scheme  = flag.String("scheme", "smp", "scheme: nomp | smp | mmp | full | ub")
		matcher = flag.String("matcher", "mln", "matcher: mln | rules")
		closure = flag.Bool("closure", false, "apply transitive closure to the output before scoring")
		bcubed  = flag.Bool("bcubed", false, "also print the B-cubed cluster metric")
		verbose = flag.Bool("v", false, "print run statistics")
	)
	flag.Parse()

	var d *bib.Dataset
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		d, err = bib.Read(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		d = cem.NewDataset(cem.DatasetKind(*kind), *scale, *seed)
	}

	exp, err := cem.Setup(d, cem.DefaultOptions())
	if err != nil {
		fatal(err)
	}
	res, err := exp.Run(cem.Scheme(*scheme), cem.MatcherKind(*matcher))
	if err != nil {
		fatal(err)
	}
	if *closure {
		res.Matches = exp.TransitiveClosure(res.Matches)
	}
	report := exp.Evaluate(res)
	fmt.Printf("dataset %s: %s\n", d.Name, d.ComputeStats())
	fmt.Printf("cover: %s\n", exp.Cover.ComputeStats())
	fmt.Println(report)
	if *bcubed {
		fmt.Printf("B³:    %v\n", exp.EvaluateBCubed(res))
	}
	if *verbose {
		fmt.Printf("stats: %s\n", res.Stats)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "emmatch: %v\n", err)
	os.Exit(1)
}
