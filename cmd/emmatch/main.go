// Command emmatch runs one message-passing scheme with one matcher on a
// dataset (read from a TSV file produced by emgen, or generated on the
// fly) and prints the evaluation report. With -records it instead runs
// the full ingestion pipeline on a raw records file (emgen -records):
// blocking, cover construction, matching and evaluation in one pass.
// With -ingest it replays a STREAM of record batches through the
// incremental pipeline: the first batch runs cold, every further batch
// updates the blocking index in place and warm-starts the matcher from
// the previous result.
//
// Usage:
//
//	emmatch -in hepth.tsv -scheme mmp -matcher mln
//	emmatch -kind dblp -scale 0.5 -scheme smp -matcher rules -closure
//	emmatch -kind hepth -parallel 8 -progress
//	emmatch -records records.tsv -scheme smp -shards 4 -bcubed
//	emmatch -ingest day1.tsv,day2.tsv,day3.tsv -scheme smp -v
//	emmatch -kind hepth -backend sharded -backend-shards 4 -checkpoint-dir run1/
//	emmatch -kind hepth -scheme smp -checkpoint-dir run1/ -resume
//	emmatch -kind hepth -backend sharded-net -backend-shards 3
//	emmatch -kind hepth -backend sharded-net -worker-addrs 127.0.0.1:7401,127.0.0.1:7402
//	emmatch -kind people -scale 0.25 -rules-file people.rules -scheme smp
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	cem "repro"
	"repro/internal/bib"
	"repro/internal/serve"
	"repro/match"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "emmatch: %v\n", err)
		os.Exit(1)
	}
}

// run is the testable entry point: it parses and validates flags against
// args and executes the selected mode, writing reports to stdout and
// progress to stderr.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("emmatch", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in       = fs.String("in", "", "dataset TSV file (from emgen); empty to generate")
		records  = fs.String("records", "", "raw records TSV file (from emgen -records); runs the full pipeline")
		ingest   = fs.String("ingest", "", "comma-separated record TSV files replayed as an incremental stream")
		kind     = fs.String("kind", "hepth", "generated corpus kind: hepth | dblp | dblp-big | million | people")
		scale    = fs.Float64("scale", 0.5, "generated corpus scale")
		seed     = fs.Int64("seed", 42, "generation seed")
		scheme   = fs.String("scheme", "smp", "scheme: nomp | smp | mmp | full | ub")
		matcher  = fs.String("matcher", "mln", "matcher: "+strings.Join(cem.Matchers(), " | "))
		closure  = fs.Bool("closure", false, "apply transitive closure to the output before scoring")
		bcubed   = fs.Bool("bcubed", false, "also print the B-cubed cluster metric")
		parallel = fs.Int("parallel", 1, "concurrent neighborhood evaluations")
		shards   = fs.Int("shards", 0, "blocking shards for -records (0 = one per CPU; -ingest's delta index blocks serially)")
		maxNbr   = fs.Int("max-neighborhood", 0, "canopy size bound for -records/-ingest (0 = unbounded)")
		backend  = fs.String("backend", "", "execution backend: "+strings.Join(cem.Backends(), " | ")+" (empty = default pool)")
		bShards  = fs.Int("backend-shards", 0, "shard/worker count for the sharded and sharded-net backends (0 = default)")
		wAddrs   = fs.String("worker-addrs", "", "comma-separated emworker addresses (host:port or unix:/path.sock) for -backend sharded-net; empty spawns in-process workers")
		ckptDir  = fs.String("checkpoint-dir", "", "persist a checkpoint after every round to this directory")
		resume   = fs.Bool("resume", false, "continue the run from -checkpoint-dir instead of starting over")
		stName   = fs.String("store", "", "storage backend for run state: "+strings.Join(cem.Stores(), " | ")+"; evidence is mirrored per round, -records/-ingest also save a reopenable snapshot")
		stateDir = fs.String("state-dir", "", "root directory of a disk-backed -store (the store lives under <dir>/store)")
		rulesF   = fs.String("rules-file", "", "declarative rules program; compiles and registers it, selecting it as the matcher")
		progress = fs.Bool("progress", false, "print a line per neighborhood evaluation")
		verbose  = fs.Bool("v", false, "print run statistics")
		dump     = fs.String("dump-matches", "", "write the final match pairs (sorted, one per line) to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *resume && *ckptDir == "" {
		return fmt.Errorf("-resume requires -checkpoint-dir")
	}
	if *stateDir != "" && *stName == "" {
		return fmt.Errorf("-state-dir requires -store")
	}
	if *stName == "disk" && *stateDir == "" {
		return fmt.Errorf("-store disk requires -state-dir (the segment store needs a directory)")
	}
	if *stateDir != "" && *stName == "mem" {
		return fmt.Errorf("-state-dir is meaningless with -store mem (nothing is persisted); use -store disk")
	}
	if *rulesF != "" {
		name, err := cem.LoadRulesFile(*rulesF)
		if err != nil {
			return err
		}
		matcherSet := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "matcher" {
				matcherSet = true
			}
		})
		if matcherSet && *matcher != name {
			return fmt.Errorf("-rules-file program is named %q but -matcher asks for %q; drop -matcher or make the names agree", name, *matcher)
		}
		*matcher = name
	}
	if *bShards != 0 && *backend != "sharded" && *backend != "sharded-net" {
		return fmt.Errorf("-backend-shards requires -backend sharded or sharded-net (got -backend %q)", *backend)
	}
	if *wAddrs != "" && *backend != "sharded-net" {
		return fmt.Errorf("-worker-addrs requires -backend sharded-net (got -backend %q)", *backend)
	}
	modes := 0
	for _, m := range []string{*in, *records, *ingest} {
		if m != "" {
			modes++
		}
	}
	if modes > 1 {
		return fmt.Errorf("-in, -records and -ingest are mutually exclusive")
	}
	if *ingest != "" && *resume {
		return fmt.Errorf("-ingest replays a fresh stream; it cannot be combined with -resume")
	}

	opts := []cem.RunnerOption{cem.WithParallelism(*parallel)}
	if *wAddrs != "" {
		addrs := strings.Split(*wAddrs, ",")
		for i := range addrs {
			addrs[i] = strings.TrimSpace(addrs[i])
		}
		opts = append(opts, cem.WithBackend(cem.NewShardedNetBackend(0, addrs...)))
	} else if *backend != "" {
		b, err := cem.NewBackend(*backend, *bShards)
		if err != nil {
			return err
		}
		opts = append(opts, cem.WithBackend(b))
	}
	if *ckptDir != "" {
		opts = append(opts, cem.WithCheckpointDir(*ckptDir))
	}
	var st match.Store
	if *stName != "" {
		var sopts []cem.StoreOption
		if *stateDir != "" {
			sopts = append(sopts, cem.WithStoreDir(filepath.Join(*stateDir, "store")))
		}
		var err error
		if st, err = cem.OpenStore(*stName, sopts...); err != nil {
			return err
		}
		defer st.Close()
		opts = append(opts, cem.WithOpenedStore(st))
	}
	if *closure {
		opts = append(opts, cem.WithTransitiveClosure())
	}
	if *progress {
		opts = append(opts, cem.WithProgress(func(e match.ProgressEvent) {
			fmt.Fprintf(stderr, "%s: round %d, neighborhood %d, %d evaluations, %d matches\n",
				e.Scheme, e.Round, e.Neighborhood, e.Evaluations, e.Matches)
		}))
	}

	pcfg := pipelineConfig{
		scheme: *scheme, matcher: *matcher, shards: *shards, maxNbr: *maxNbr,
		bcubed: *bcubed, verbose: *verbose, resume: *resume, runnerOpts: opts,
		store: st,
	}
	if *ingest != "" {
		return runIngest(strings.Split(*ingest, ","), pcfg, stdout)
	}
	if *records != "" {
		return runPipeline(*records, pcfg, stdout)
	}

	var d *bib.Dataset
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		var rerr error
		d, rerr = bib.Read(f)
		f.Close()
		if rerr != nil {
			return rerr
		}
	} else {
		var err error
		d, err = cem.GenerateDataset(cem.DatasetKind(*kind), *scale, *seed)
		if err != nil {
			return err
		}
	}

	exp, err := cem.New(d)
	if err != nil {
		return err
	}
	runner, err := exp.Runner(*matcher, opts...)
	if err != nil {
		return err
	}
	var res *cem.Result
	if *resume {
		res, err = runner.Resume(context.Background(), cem.Scheme(*scheme))
	} else {
		res, err = runner.Run(context.Background(), cem.Scheme(*scheme))
	}
	if err != nil {
		return err
	}
	report := exp.Evaluate(res)
	fmt.Fprintf(stdout, "dataset %s: %s\n", d.Name, d.ComputeStats())
	fmt.Fprintf(stdout, "cover: %s\n", exp.Cover.ComputeStats())
	fmt.Fprintln(stdout, report)
	if *bcubed {
		fmt.Fprintf(stdout, "B³:    %v\n", exp.EvaluateBCubed(res))
	}
	if *verbose {
		fmt.Fprintf(stdout, "stats: %s\n", res.Stats)
	}
	if *dump != "" {
		if err := dumpMatches(*dump, res.Matches); err != nil {
			return err
		}
	}
	return nil
}

// dumpMatches writes the final match set in the canonical fixture form:
// a count header plus one sorted "a b" pair per line. Two runs agree iff
// their dump files are byte-identical — the contract chaos-smoke checks
// across process boundaries.
func dumpMatches(path string, matches match.PairSet) error {
	var b strings.Builder
	pairs := matches.Sorted()
	fmt.Fprintf(&b, "# %d matches\n", len(pairs))
	for _, p := range pairs {
		fmt.Fprintf(&b, "%d %d\n", p.A, p.B)
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// pipelineConfig bundles the pipeline-mode options shared by -records
// and -ingest.
type pipelineConfig struct {
	scheme, matcher string
	shards, maxNbr  int
	bcubed, verbose bool
	resume          bool
	runnerOpts      []cem.RunnerOption
	store           match.Store
}

// newPipeline assembles the pipeline both modes run on.
func (c pipelineConfig) newPipeline(name string) (*cem.Pipeline, error) {
	return cem.NewPipeline(
		cem.WithDatasetName(name),
		cem.WithMatcher(c.matcher),
		cem.WithScheme(cem.Scheme(c.scheme)),
		cem.WithShards(c.shards),
		cem.WithMaxNeighborhood(c.maxNbr),
		cem.WithRunnerOptions(c.runnerOpts...),
	)
}

// report prints one pipeline result.
func (c pipelineConfig) report(w io.Writer, label string, res *cem.PipelineResult) {
	fmt.Fprintf(w, "%s: %d records, %d matches (blocking %v, matching %v)\n",
		label, res.Records, res.Matches.Len(), res.BlockingTime, res.MatchingTime)
	fmt.Fprintf(w, "cover: %s\n", res.Experiment.Cover.ComputeStats())
	if res.Labeled {
		fmt.Fprintln(w, *res.Report)
		if c.bcubed {
			fmt.Fprintf(w, "B³:    %v\n", *res.BCubed)
		}
	} else {
		fmt.Fprintln(w, "(unlabeled records: no metrics)")
	}
	if c.verbose {
		fmt.Fprintf(w, "stats: %s\n", res.Stats)
	}
}

// readRecordsFile loads one raw records TSV.
func readRecordsFile(path string) (string, []cem.Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", nil, err
	}
	defer f.Close()
	name, recs, err := cem.ReadRecords(f)
	if err != nil {
		return "", nil, fmt.Errorf("%s: %w", path, err)
	}
	if name == "" {
		name = path
	}
	return name, recs, nil
}

// runPipeline is the -records path: raw records → blocking → matching →
// metrics through the public Pipeline API.
func runPipeline(path string, cfg pipelineConfig, stdout io.Writer) error {
	name, recs, err := readRecordsFile(path)
	if err != nil {
		return err
	}
	pipe, err := cfg.newPipeline(name)
	if err != nil {
		return err
	}
	var res *cem.PipelineResult
	if cfg.resume {
		res, err = pipe.Resume(context.Background(), recs)
	} else {
		res, err = pipe.Run(context.Background(), recs)
	}
	if err != nil {
		return err
	}
	if cfg.store != nil {
		if err := cem.SaveState(cfg.store, res, 1); err != nil {
			return err
		}
	}
	cfg.report(stdout, "records "+name, res)
	return nil
}

// runIngest is the -ingest path: the record batches are replayed as an
// incremental stream through the service's commit path (serve.Committer
// over Pipeline.Update — delta blocking plus warm-started matching), so
// the CLI replay and emserve's serving semantics cannot drift. One
// report is printed per batch, annotated with whether the batch
// warm-started or forced a full re-run; -v appends the pipeline's
// cumulative counters at the end of the stream.
func runIngest(paths []string, cfg pipelineConfig, stdout io.Writer) error {
	var committer *serve.Committer
	for i, path := range paths {
		path = strings.TrimSpace(path)
		if path == "" {
			return fmt.Errorf("-ingest: empty batch path at position %d", i+1)
		}
		name, recs, err := readRecordsFile(path)
		if err != nil {
			return err
		}
		if committer == nil {
			pipe, err := cfg.newPipeline(name)
			if err != nil {
				return err
			}
			copts := []serve.CommitterOption{}
			if cfg.store != nil {
				copts = append(copts, serve.WithStore(cfg.store))
			}
			if committer, err = serve.NewCommitter(pipe, copts...); err != nil {
				return err
			}
		}
		state, err := committer.Apply(context.Background(), recs)
		if err != nil {
			return fmt.Errorf("batch %d (%s): %w", i+1, path, err)
		}
		res := state.Result
		mode := "cold"
		switch {
		case res.WarmStarted:
			mode = "warm"
		case res.ForcedRerun:
			mode = "full re-run (non-additive delta)"
		}
		cfg.report(stdout, fmt.Sprintf("batch %d/%d %s [%s]", i+1, len(paths), path, mode), res)
	}
	if cfg.verbose && committer != nil {
		s := committer.Pipeline().Stats()
		fmt.Fprintf(stdout, "cumulative: %d updates (%d cold, %d warm, %d forced), %d matcher calls over %d records\n",
			s.Updates, s.ColdStarts, s.WarmStarted, s.ForcedReruns, s.MatcherCalls, s.RecordsIngested)
		if lookups := s.CacheHits + s.CacheMisses + s.CacheInvalidations; lookups > 0 {
			fmt.Fprintf(stdout, "verdict memo: %d hits / %d lookups (%.0f%% hit rate, %d invalidations)\n",
				s.CacheHits, lookups, 100*float64(s.CacheHits)/float64(lookups), s.CacheInvalidations)
		}
	}
	return nil
}
