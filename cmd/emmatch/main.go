// Command emmatch runs one message-passing scheme with one matcher on a
// dataset (read from a TSV file produced by emgen, or generated on the
// fly) and prints the evaluation report. With -records it instead runs
// the full ingestion pipeline on a raw records file (emgen -records):
// blocking, cover construction, matching and evaluation in one pass.
//
// Usage:
//
//	emmatch -in hepth.tsv -scheme mmp -matcher mln
//	emmatch -kind dblp -scale 0.5 -scheme smp -matcher rules -closure
//	emmatch -kind hepth -parallel 8 -progress
//	emmatch -records records.tsv -scheme smp -shards 4 -bcubed
//	emmatch -kind hepth -backend sharded -backend-shards 4 -checkpoint-dir run1/
//	emmatch -kind hepth -scheme smp -checkpoint-dir run1/ -resume
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	cem "repro"
	"repro/internal/bib"
	"repro/match"
)

func main() {
	var (
		in       = flag.String("in", "", "dataset TSV file (from emgen); empty to generate")
		records  = flag.String("records", "", "raw records TSV file (from emgen -records); runs the full pipeline")
		kind     = flag.String("kind", "hepth", "generated corpus kind: hepth | dblp | dblp-big")
		scale    = flag.Float64("scale", 0.5, "generated corpus scale")
		seed     = flag.Int64("seed", 42, "generation seed")
		scheme   = flag.String("scheme", "smp", "scheme: nomp | smp | mmp | full | ub")
		matcher  = flag.String("matcher", "mln", "matcher: "+strings.Join(cem.Matchers(), " | "))
		closure  = flag.Bool("closure", false, "apply transitive closure to the output before scoring")
		bcubed   = flag.Bool("bcubed", false, "also print the B-cubed cluster metric")
		parallel = flag.Int("parallel", 1, "concurrent neighborhood evaluations")
		shards   = flag.Int("shards", 0, "blocking shards for -records (0 = one per CPU)")
		maxNbr   = flag.Int("max-neighborhood", 0, "canopy size bound for -records (0 = unbounded)")
		backend  = flag.String("backend", "", "execution backend: "+strings.Join(cem.Backends(), " | ")+" (empty = default pool)")
		bShards  = flag.Int("backend-shards", 0, "shard count for the sharded backend (0 = one per CPU)")
		ckptDir  = flag.String("checkpoint-dir", "", "persist a checkpoint after every round to this directory")
		resume   = flag.Bool("resume", false, "continue the run from -checkpoint-dir instead of starting over")
		progress = flag.Bool("progress", false, "print a line per neighborhood evaluation")
		verbose  = flag.Bool("v", false, "print run statistics")
	)
	flag.Parse()

	if *resume && *ckptDir == "" {
		fatal(fmt.Errorf("-resume requires -checkpoint-dir"))
	}
	if *bShards != 0 && *backend == "" {
		fatal(fmt.Errorf("-backend-shards requires -backend (e.g. -backend sharded)"))
	}
	opts := []cem.RunnerOption{cem.WithParallelism(*parallel)}
	if *backend != "" {
		b, err := cem.NewBackend(*backend, *bShards)
		if err != nil {
			fatal(err)
		}
		opts = append(opts, cem.WithBackend(b))
	}
	if *ckptDir != "" {
		opts = append(opts, cem.WithCheckpointDir(*ckptDir))
	}
	if *closure {
		opts = append(opts, cem.WithTransitiveClosure())
	}
	if *progress {
		opts = append(opts, cem.WithProgress(func(e match.ProgressEvent) {
			fmt.Fprintf(os.Stderr, "%s: round %d, neighborhood %d, %d evaluations, %d matches\n",
				e.Scheme, e.Round, e.Neighborhood, e.Evaluations, e.Matches)
		}))
	}

	if *records != "" {
		runPipeline(*records, *scheme, *matcher, *shards, *maxNbr, *bcubed, *verbose, *resume, opts)
		return
	}

	var d *bib.Dataset
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		var rerr error
		d, rerr = bib.Read(f)
		f.Close()
		if rerr != nil {
			fatal(rerr)
		}
	} else {
		var err error
		d, err = cem.GenerateDataset(cem.DatasetKind(*kind), *scale, *seed)
		if err != nil {
			fatal(err)
		}
	}

	exp, err := cem.New(d)
	if err != nil {
		fatal(err)
	}
	runner, err := exp.Runner(*matcher, opts...)
	if err != nil {
		fatal(err)
	}
	var res *cem.Result
	if *resume {
		res, err = runner.Resume(context.Background(), cem.Scheme(*scheme))
	} else {
		res, err = runner.Run(context.Background(), cem.Scheme(*scheme))
	}
	if err != nil {
		fatal(err)
	}
	report := exp.Evaluate(res)
	fmt.Printf("dataset %s: %s\n", d.Name, d.ComputeStats())
	fmt.Printf("cover: %s\n", exp.Cover.ComputeStats())
	fmt.Println(report)
	if *bcubed {
		fmt.Printf("B³:    %v\n", exp.EvaluateBCubed(res))
	}
	if *verbose {
		fmt.Printf("stats: %s\n", res.Stats)
	}
}

// runPipeline is the -records path: raw records → blocking → matching →
// metrics through the public Pipeline API.
func runPipeline(path, scheme, matcher string, shards, maxNbr int, bcubed, verbose, resume bool, runnerOpts []cem.RunnerOption) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	name, recs, err := cem.ReadRecords(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	if name == "" {
		name = path
	}
	pipe, err := cem.NewPipeline(
		cem.WithDatasetName(name),
		cem.WithMatcher(matcher),
		cem.WithScheme(cem.Scheme(scheme)),
		cem.WithShards(shards),
		cem.WithMaxNeighborhood(maxNbr),
		cem.WithRunnerOptions(runnerOpts...),
	)
	if err != nil {
		fatal(err)
	}
	var res *cem.PipelineResult
	if resume {
		res, err = pipe.Resume(context.Background(), recs)
	} else {
		res, err = pipe.Run(context.Background(), recs)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("records %s: %d records, %d matches (blocking %v, matching %v)\n",
		name, res.Records, res.Matches.Len(), res.BlockingTime, res.MatchingTime)
	fmt.Printf("cover: %s\n", res.Experiment.Cover.ComputeStats())
	if res.Labeled {
		fmt.Println(*res.Report)
		if bcubed {
			fmt.Printf("B³:    %v\n", *res.BCubed)
		}
	} else {
		fmt.Println("(unlabeled records: no metrics)")
	}
	if verbose {
		fmt.Printf("stats: %s\n", res.Stats)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "emmatch: %v\n", err)
	os.Exit(1)
}
