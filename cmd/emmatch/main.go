// Command emmatch runs one message-passing scheme with one matcher on a
// dataset (read from a TSV file produced by emgen, or generated on the
// fly) and prints the evaluation report.
//
// Usage:
//
//	emmatch -in hepth.tsv -scheme mmp -matcher mln
//	emmatch -kind dblp -scale 0.5 -scheme smp -matcher rules -closure
//	emmatch -kind hepth -parallel 8 -progress
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	cem "repro"
	"repro/internal/bib"
	"repro/match"
)

func main() {
	var (
		in       = flag.String("in", "", "dataset TSV file (from emgen); empty to generate")
		kind     = flag.String("kind", "hepth", "generated corpus kind: hepth | dblp | dblp-big")
		scale    = flag.Float64("scale", 0.5, "generated corpus scale")
		seed     = flag.Int64("seed", 42, "generation seed")
		scheme   = flag.String("scheme", "smp", "scheme: nomp | smp | mmp | full | ub")
		matcher  = flag.String("matcher", "mln", "matcher: "+strings.Join(cem.Matchers(), " | "))
		closure  = flag.Bool("closure", false, "apply transitive closure to the output before scoring")
		bcubed   = flag.Bool("bcubed", false, "also print the B-cubed cluster metric")
		parallel = flag.Int("parallel", 1, "concurrent neighborhood evaluations")
		progress = flag.Bool("progress", false, "print a line per neighborhood evaluation")
		verbose  = flag.Bool("v", false, "print run statistics")
	)
	flag.Parse()

	var d *bib.Dataset
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		d, err = bib.Read(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	} else {
		var err error
		d, err = cem.GenerateDataset(cem.DatasetKind(*kind), *scale, *seed)
		if err != nil {
			fatal(err)
		}
	}

	exp, err := cem.New(d)
	if err != nil {
		fatal(err)
	}
	opts := []cem.RunnerOption{cem.WithParallelism(*parallel)}
	if *closure {
		opts = append(opts, cem.WithTransitiveClosure())
	}
	if *progress {
		opts = append(opts, cem.WithProgress(func(e match.ProgressEvent) {
			fmt.Fprintf(os.Stderr, "%s: round %d, neighborhood %d, %d evaluations, %d matches\n",
				e.Scheme, e.Round, e.Neighborhood, e.Evaluations, e.Matches)
		}))
	}
	runner, err := exp.Runner(*matcher, opts...)
	if err != nil {
		fatal(err)
	}
	res, err := runner.Run(context.Background(), cem.Scheme(*scheme))
	if err != nil {
		fatal(err)
	}
	report := exp.Evaluate(res)
	fmt.Printf("dataset %s: %s\n", d.Name, d.ComputeStats())
	fmt.Printf("cover: %s\n", exp.Cover.ComputeStats())
	fmt.Println(report)
	if *bcubed {
		fmt.Printf("B³:    %v\n", exp.EvaluateBCubed(res))
	}
	if *verbose {
		fmt.Printf("stats: %s\n", res.Stats)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "emmatch: %v\n", err)
	os.Exit(1)
}
