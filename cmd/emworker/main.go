// Command emworker runs one sharded-net worker process: it grounds the
// same experiment a coordinator runs (dataset, matcher, cover — the
// model is never serialized) and serves partition assignments over a
// TCP or unix socket until signaled. A coordinator attaches via
// emmatch -backend sharded-net -worker-addrs, and the handshake
// fingerprint (scheme, matcher, cover sizes) refuses coordinators
// grounded on a different corpus. SIGKILLing an emworker mid-run makes
// the coordinator reassign its partitions — the run finishes on the
// surviving workers with identical output.
//
// Usage:
//
//	emworker -listen 127.0.0.1:7401 -kind hepth -scheme smp -matcher mln
//	emworker -listen unix:/tmp/w0.sock -in hepth.tsv -scheme mmp
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"

	cem "repro"
	"repro/internal/bib"
	"repro/internal/core"
	emnet "repro/internal/net"
	"repro/internal/wire"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr, nil, nil); err != nil {
		fmt.Fprintf(os.Stderr, "emworker: %v\n", err)
		os.Exit(1)
	}
}

// coreScheme maps the CLI scheme flag to the engine's canonical
// round-based scheme name ("" = not round-based, which a worker cannot
// serve: FULL and UB have no rounds to distribute).
func coreScheme(s string) string {
	switch strings.ToLower(s) {
	case "nomp", "no-mp":
		return "NO-MP"
	case "smp":
		return "SMP"
	case "mmp":
		return "MMP"
	}
	return ""
}

// run is the testable entry point. sigs overrides the OS signal channel
// (nil installs SIGINT/SIGTERM); ready, when non-nil, receives the
// bound listen address once the worker accepts connections.
func run(args []string, stdout, stderr io.Writer, sigs chan os.Signal, ready chan<- string) error {
	fs := flag.NewFlagSet("emworker", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		listen  = fs.String("listen", "127.0.0.1:0", "listen address: host:port or unix:/path.sock")
		in      = fs.String("in", "", "dataset TSV file (from emgen); empty to generate")
		kind    = fs.String("kind", "hepth", "generated corpus kind: hepth | dblp | dblp-big | million")
		scale   = fs.Float64("scale", 0.5, "generated corpus scale")
		seed    = fs.Int64("seed", 42, "generation seed")
		scheme  = fs.String("scheme", "smp", "scheme this worker serves: nomp | smp | mmp")
		matcher = fs.String("matcher", "mln", "matcher: "+strings.Join(cem.Matchers(), " | "))
		format  = fs.String("format", "binary", "wire codec for outgoing batches: binary | json")
		verbose = fs.Bool("v", false, "log worker lifecycle events to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cs := coreScheme(*scheme)
	if cs == "" {
		return fmt.Errorf("scheme %q is not round-based; a worker serves nomp, smp or mmp", *scheme)
	}
	var wf wire.Format
	switch *format {
	case "binary":
		wf = wire.Binary
	case "json":
		wf = wire.JSON
	default:
		return fmt.Errorf("unknown -format %q (binary | json)", *format)
	}

	var (
		d   *bib.Dataset
		err error
	)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		d, err = bib.Read(f)
		f.Close()
		if err != nil {
			return err
		}
	} else if d, err = cem.GenerateDataset(cem.DatasetKind(*kind), *scale, *seed); err != nil {
		return err
	}
	exp, err := cem.New(d)
	if err != nil {
		return err
	}
	runner, err := exp.Runner(*matcher)
	if err != nil {
		return err
	}
	cfg := core.Config{
		Cover:    exp.Cover,
		Matcher:  runner.Matcher(),
		Relation: exp.Dataset.Coauthor(),
	}

	network, addr := "tcp", *listen
	if rest, ok := strings.CutPrefix(addr, "unix:"); ok {
		network, addr = "unix", rest
	}
	l, err := net.Listen(network, addr)
	if err != nil {
		return err
	}
	bound := l.Addr().String()
	if network == "unix" {
		bound = "unix:" + bound
	}
	fmt.Fprintf(stdout, "emworker: %s %s on %s (%d neighborhoods over %d entities)\n",
		cs, *matcher, bound, exp.Cover.Len(), exp.Cover.NumEntities)
	if ready != nil {
		ready <- bound
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if sigs == nil {
		sigs = make(chan os.Signal, 1)
		signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
		defer signal.Stop(sigs)
	}
	go func() {
		if sig, ok := <-sigs; ok {
			fmt.Fprintf(stderr, "emworker: %v: shutting down\n", sig)
			cancel()
		}
	}()

	opts := emnet.WorkerOptions{Format: wf, Matcher: *matcher}
	if *verbose {
		opts.Logf = func(f string, a ...any) { fmt.Fprintf(stderr, "emworker: "+f+"\n", a...) }
	}
	if err := emnet.Serve(ctx, l, cfg, cs, opts); err != nil && err != context.Canceled {
		return err
	}
	return nil
}
