package main

import (
	"context"
	"os"
	"strings"
	"syscall"
	"testing"

	cem "repro"
)

// TestFlagValidation pins the CLI's argument checks.
func TestFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"whole-set scheme", []string{"-scheme", "full"}, "not round-based"},
		{"unknown scheme", []string{"-scheme", "zigzag"}, "not round-based"},
		{"unknown format", []string{"-format", "xml"}, "unknown -format"},
		{"unknown flag", []string{"-no-such-flag"}, "flag provided but not defined"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errBuf strings.Builder
			err := run(tc.args, &out, &errBuf, nil, nil)
			if err == nil {
				t.Fatalf("run(%v) succeeded, want error containing %q", tc.args, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("run(%v) = %v, want error containing %q", tc.args, err, tc.want)
			}
		})
	}
}

// TestWorkerServesCoordinator boots a real emworker on a TCP socket,
// attaches a coordinator to it through the public API, and asserts the
// distributed run reproduces the in-process pool run exactly. A SIGTERM
// then shuts the worker down cleanly.
func TestWorkerServesCoordinator(t *testing.T) {
	const (
		kind  = "hepth"
		scale = 0.2
		seed  = int64(7)
	)
	sigs := make(chan os.Signal, 1)
	ready := make(chan string, 1)
	done := make(chan error, 1)
	var out, errBuf strings.Builder
	go func() {
		done <- run([]string{
			"-listen", "127.0.0.1:0", "-kind", kind, "-scale", "0.2", "-seed", "7",
			"-scheme", "smp", "-matcher", "mln",
		}, &out, &errBuf, sigs, ready)
	}()
	addr := <-ready

	d, err := cem.GenerateDataset(cem.DatasetKind(kind), scale, seed)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := cem.New(d)
	if err != nil {
		t.Fatal(err)
	}

	poolRunner, err := exp.Runner("mln")
	if err != nil {
		t.Fatal(err)
	}
	pool, err := poolRunner.Run(context.Background(), cem.SchemeSMP)
	if err != nil {
		t.Fatal(err)
	}

	netRunner, err := exp.Runner("mln", cem.WithBackend(cem.NewShardedNetBackend(0, addr)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := netRunner.Run(context.Background(), cem.SchemeSMP)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Matches.Equal(pool.Matches) {
		t.Errorf("distributed run diverges from pool: %d vs %d matches", res.Matches.Len(), pool.Matches.Len())
	}

	sigs <- syscall.SIGTERM
	if err := <-done; err != nil {
		t.Fatalf("worker shutdown: %v", err)
	}
	if !strings.Contains(out.String(), "emworker: SMP mln on 127.0.0.1:") {
		t.Errorf("startup banner missing from stdout: %q", out.String())
	}
}
