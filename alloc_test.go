package cem_test

import (
	"context"
	"testing"

	cem "repro"
)

// TestSMPRunAllocs bounds the allocations of one serial SMP run over the
// HEPTH 0.25 seed — the scheme benchmark's configuration. The dense-ID
// evidence engine brought this from ~24k allocations to ~5k; the bound
// catches any change that re-introduces per-evaluation churn (map-built
// scopes, unpooled solvers, per-call model rebuilding) while leaving
// headroom for legitimate drift.
func TestSMPRunAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation regression bound; skipped in -short")
	}
	if raceEnabled {
		t.Skip("race instrumentation inflates allocation counts")
	}
	exp, err := cem.New(cem.NewDataset(cem.HEPTH, 0.25, 42))
	if err != nil {
		t.Fatal(err)
	}
	runner, err := exp.Runner(cem.MatcherMLN)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := runner.Run(ctx, cem.SchemeSMP); err != nil {
		t.Fatal(err) // also warms the matcher pools
	}
	avg := testing.AllocsPerRun(3, func() {
		if _, err := runner.Run(ctx, cem.SchemeSMP); err != nil {
			t.Fatal(err)
		}
	})
	const maxAllocs = 10000
	if avg > maxAllocs {
		t.Errorf("serial SMP run allocates %.0f times, want <= %d", avg, maxAllocs)
	}
}
