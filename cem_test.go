package cem

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/eval"
)

// run is a test helper: execute a scheme through the Runner API and
// fail on error.
func run(t *testing.T, exp *Experiment, s Scheme, m string) *Result {
	t.Helper()
	r, err := exp.Runner(m)
	if err != nil {
		t.Fatalf("%s/%s: %v", s, m, err)
	}
	res, err := r.Run(context.Background(), s)
	if err != nil {
		t.Fatalf("%s/%s: %v", s, m, err)
	}
	return res
}

// TestSetupWiring checks the facade assembles a consistent experiment.
func TestSetupWiring(t *testing.T) {
	d := NewDataset(DBLP, 0.2, 3)
	exp, err := New(d)
	if err != nil {
		t.Fatal(err)
	}
	if !exp.Cover.IsCover() {
		t.Error("cover does not cover all references")
	}
	if !exp.Cover.IsTotal(d.Coauthor()) {
		t.Error("cover not total w.r.t. Coauthor (Definition 7)")
	}
	if len(exp.Candidates) == 0 {
		t.Error("no candidate pairs")
	}
	if exp.MLN.NumPairs() != len(exp.Candidates) || exp.Rules.NumPairs() != len(exp.Candidates) {
		t.Error("matchers ground a different pair universe than the candidates")
	}
	if exp.Truth.Len() == 0 {
		t.Error("no ground-truth pairs")
	}
}

// TestNewDatasetKinds covers the three presets and determinism.
func TestNewDatasetKinds(t *testing.T) {
	for _, kind := range []DatasetKind{HEPTH, DBLP, DBLPBig} {
		d := NewDataset(kind, 0.1, 5)
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", kind, err)
		}
		d2 := NewDataset(kind, 0.1, 5)
		if d.NumRefs() != d2.NumRefs() {
			t.Errorf("%s: generation not deterministic", kind)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown dataset kind must panic")
		}
	}()
	NewDataset("nope", 1, 1)
}

// TestRunRejectsBadArgs: unknown schemes/matchers error cleanly,
// through the deprecated wrapper and the Runner API alike.
func TestRunRejectsBadArgs(t *testing.T) {
	d := NewDataset(DBLP, 0.1, 3)
	exp, err := New(d)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exp.Run("warp", MatcherMLN); err == nil {
		t.Error("unknown scheme accepted")
	}
	if _, err := exp.Run(SchemeSMP, "psychic"); err == nil {
		t.Error("unknown matcher accepted")
	}
	if _, err := exp.Run(SchemeMMP, MatcherRules); err == nil {
		t.Error("MMP with the Type-I RULES matcher must fail")
	}
	if _, err := exp.Run(SchemeUB, MatcherRules); err == nil {
		t.Error("UB with the RULES matcher must fail (no DecideGiven)")
	}
	if _, err := exp.Runner("psychic"); err == nil {
		t.Error("Runner accepted an unregistered matcher")
	}
	r, err := exp.Runner(MatcherMLN)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(context.Background(), "warp"); err == nil {
		t.Error("Runner accepted an unknown scheme")
	}
}

// TestPaperShapeMLN asserts the paper's headline orderings on both
// corpora (Figures 3(a)–3(c)): precision near 1 for every scheme;
// recall NO-MP ≤ SMP ≤ MMP; MMP sound AND complete w.r.t. FULL
// (completeness 1 — the §6.1 result); UB at least FULL's recall.
func TestPaperShapeMLN(t *testing.T) {
	for _, kind := range []DatasetKind{HEPTH, DBLP} {
		d := NewDataset(kind, 0.35, 42)
		exp, err := New(d)
		if err != nil {
			t.Fatal(err)
		}
		nomp := run(t, exp, SchemeNoMP, MatcherMLN)
		smp := run(t, exp, SchemeSMP, MatcherMLN)
		mmp := run(t, exp, SchemeMMP, MatcherMLN)
		full := run(t, exp, SchemeFull, MatcherMLN)
		ub := run(t, exp, SchemeUB, MatcherMLN)

		rN := exp.Evaluate(nomp).PRF
		rS := exp.Evaluate(smp).PRF
		rM := exp.Evaluate(mmp).PRF
		rF := exp.Evaluate(full).PRF
		rU := exp.Evaluate(ub).PRF

		for name, p := range map[string]float64{
			"NO-MP": rN.Precision, "SMP": rS.Precision, "MMP": rM.Precision,
		} {
			if p < 0.85 {
				t.Errorf("%s: %s precision %.3f below 0.85", kind, name, p)
			}
		}
		if !(rN.Recall <= rS.Recall && rS.Recall <= rM.Recall) {
			t.Errorf("%s: recall ordering violated: NO-MP %.3f, SMP %.3f, MMP %.3f",
				kind, rN.Recall, rS.Recall, rM.Recall)
		}
		if rM.Recall <= rN.Recall {
			t.Errorf("%s: MMP gained nothing over NO-MP (%.3f vs %.3f)",
				kind, rM.Recall, rN.Recall)
		}
		// Soundness: every scheme ⊆ FULL (Theorems 2 and 4).
		for name, res := range map[string]*Result{"NO-MP": nomp, "SMP": smp, "MMP": mmp} {
			if s := eval.Soundness(res.Matches, full.Matches); s < 1 {
				t.Errorf("%s: %s unsound vs FULL: %.4f", kind, name, s)
			}
		}
		// Completeness: MMP recovers the full run exactly (§6.1).
		if c := eval.Completeness(mmp.Matches, full.Matches); c < 1 {
			t.Errorf("%s: MMP completeness vs FULL = %.4f, want 1", kind, c)
		}
		// UB upper-bounds the full run's recall.
		if rU.Recall < rF.Recall {
			t.Errorf("%s: UB recall %.3f below FULL %.3f", kind, rU.Recall, rF.Recall)
		}
	}
}

// TestPaperShapeRules asserts Appendix C: SMP equals FULL for the RULES
// matcher, both at least NO-MP; and MMP/UB are rejected for Type-I.
func TestPaperShapeRules(t *testing.T) {
	for _, kind := range []DatasetKind{HEPTH, DBLP} {
		d := NewDataset(kind, 0.35, 42)
		exp, err := New(d)
		if err != nil {
			t.Fatal(err)
		}
		nomp := run(t, exp, SchemeNoMP, MatcherRules)
		smp := run(t, exp, SchemeSMP, MatcherRules)
		full := run(t, exp, SchemeFull, MatcherRules)
		if !smp.Matches.Equal(full.Matches) {
			t.Errorf("%s: SMP != FULL for RULES (%d vs %d matches)",
				kind, smp.Matches.Len(), full.Matches.Len())
		}
		if !nomp.Matches.Subset(smp.Matches) {
			t.Errorf("%s: SMP lost NO-MP matches", kind)
		}
	}
}

// TestNeighborhoodRegimes: the corpus-level contrast of §6.1 — the
// DBLP-like corpus produces more, smaller neighborhoods than HEPTH-like.
func TestNeighborhoodRegimes(t *testing.T) {
	hep, err := New(NewDataset(HEPTH, 0.35, 42))
	if err != nil {
		t.Fatal(err)
	}
	dbl, err := New(NewDataset(DBLP, 0.35, 42))
	if err != nil {
		t.Fatal(err)
	}
	hs, ds := hep.Cover.ComputeStats(), dbl.Cover.ComputeStats()
	if ds.MeanSize >= hs.MeanSize {
		t.Errorf("DBLP mean neighborhood %.1f must be below HEPTH %.1f", ds.MeanSize, hs.MeanSize)
	}
	// Per reference, DBLP yields more neighborhoods.
	hRate := float64(hs.Neighborhoods) / float64(hep.Dataset.NumRefs())
	dRate := float64(ds.Neighborhoods) / float64(dbl.Dataset.NumRefs())
	if dRate <= hRate {
		t.Errorf("DBLP neighborhoods/ref %.3f must exceed HEPTH %.3f", dRate, hRate)
	}
}

// TestTransitiveClosureHelper: closure connects chains and is idempotent.
func TestTransitiveClosureHelper(t *testing.T) {
	d := NewDataset(DBLP, 0.1, 3)
	exp, err := New(d)
	if err != nil {
		t.Fatal(err)
	}
	chain := core.NewPairSet(core.MakePair(0, 1), core.MakePair(1, 2))
	closed := exp.TransitiveClosure(chain)
	if !closed.Has(core.MakePair(0, 2)) {
		t.Error("closure missing chain pair")
	}
	if !exp.TransitiveClosure(closed).Equal(closed) {
		t.Error("closure not idempotent")
	}
}

// TestGridFacade: the grid runner agrees with the sequential scheme.
func TestGridFacade(t *testing.T) {
	d := NewDataset(DBLP, 0.2, 11)
	exp, err := New(d)
	if err != nil {
		t.Fatal(err)
	}
	seq := run(t, exp, SchemeSMP, MatcherMLN)
	gres, err := exp.RunGrid(SchemeSMP, MatcherMLN, gridDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if !gres.Matches.Equal(seq.Matches) {
		t.Errorf("grid SMP diverges from sequential: %d vs %d matches",
			gres.Matches.Len(), seq.Matches.Len())
	}
	if _, err := exp.RunGrid(SchemeUB, MatcherMLN, gridDefaults()); err == nil {
		t.Error("UB on the grid must be rejected")
	}
}

// TestEvaluateBCubed: the cluster metric is consistent with the pairwise
// one — a sound high-precision match set yields high B³ precision, and
// richer schemes never lower B³ recall.
func TestEvaluateBCubed(t *testing.T) {
	d := NewDataset(DBLP, 0.25, 17)
	exp, err := New(d)
	if err != nil {
		t.Fatal(err)
	}
	nomp := run(t, exp, SchemeNoMP, MatcherMLN)
	mmp := run(t, exp, SchemeMMP, MatcherMLN)
	bN, bM := exp.EvaluateBCubed(nomp), exp.EvaluateBCubed(mmp)
	if bN.Precision < 0.9 || bM.Precision < 0.9 {
		t.Errorf("B³ precision low: NO-MP %.3f, MMP %.3f", bN.Precision, bM.Precision)
	}
	if bM.Recall < bN.Recall {
		t.Errorf("MMP lowered B³ recall: %.3f < %.3f", bM.Recall, bN.Recall)
	}
	// Singleton prediction bound: recall equals per-entity 1/|cluster|
	// average; any real matching must beat it.
	empty := &Result{Result: &core.Result{Scheme: "empty", Matches: core.NewPairSet()}}
	if exp.EvaluateBCubed(empty).Recall >= bM.Recall {
		t.Error("MMP B³ recall not above the singleton baseline")
	}
}

// TestEvaluateAgainst exercises the reference-based report path.
func TestEvaluateAgainst(t *testing.T) {
	d := NewDataset(DBLP, 0.2, 11)
	exp, err := New(d)
	if err != nil {
		t.Fatal(err)
	}
	full := run(t, exp, SchemeFull, MatcherMLN)
	smp := run(t, exp, SchemeSMP, MatcherMLN)
	rep := exp.EvaluateAgainst(smp, full.Matches)
	if rep.Soundness < 1 {
		t.Errorf("SMP unsound vs FULL: %.4f", rep.Soundness)
	}
	if rep.Completeness <= 0 {
		t.Errorf("bogus completeness %v", rep.Completeness)
	}
}
