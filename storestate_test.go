package cem_test

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	cem "repro"
	"repro/match"
)

// storeRecords synthesizes a small labeled record stream for the
// store-state tests.
func storeRecords(t *testing.T) []cem.Record {
	t.Helper()
	records, err := cem.GenerateRecords(cem.HEPTH, 0.15, 7)
	if err != nil {
		t.Fatal(err)
	}
	return records
}

// TestStoreStateReopen pins the restart-without-replay contract: a
// pipeline run on a disk store, saved with SaveState, reopens from the
// store byte-identical — same matches, same metrics — with ZERO matcher
// calls, and the reopened result continues incrementally like the
// original would have.
func TestStoreStateReopen(t *testing.T) {
	ctx := context.Background()
	records := storeRecords(t)
	dir := filepath.Join(t.TempDir(), "store")

	s, err := cem.OpenStore("disk", cem.WithStoreDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := cem.NewPipeline(
		cem.WithMatcher(cem.MatcherMLN),
		cem.WithScheme(cem.SchemeSMP),
		cem.WithRunnerOptions(cem.WithOpenedStore(s)),
	)
	if err != nil {
		t.Fatal(err)
	}
	// Ingest in two batches so the saved state carries streaming
	// blocking state (the postings blob).
	half := len(records) / 2
	first, err := pipe.Update(ctx, nil, records[:half])
	if err != nil {
		t.Fatal(err)
	}
	res, err := pipe.Update(ctx, first, records[half:])
	if err != nil {
		t.Fatal(err)
	}
	// The store's evidence mirrors the run's accumulated M+.
	var stored int
	if stored, err = s.EvidenceLen(); err != nil {
		t.Fatal(err)
	}
	if stored != res.Matches.Len() {
		t.Fatalf("store holds %d evidence keys, result has %d matches", stored, res.Matches.Len())
	}
	const seq = 5
	if err := cem.SaveState(s, res, seq); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A new process: new store handle, new pipeline, same records.
	s2, err := cem.OpenStore("disk", cem.WithStoreDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	pipe2, err := cem.NewPipeline(
		cem.WithMatcher(cem.MatcherMLN),
		cem.WithScheme(cem.SchemeSMP),
		cem.WithRunnerOptions(cem.WithOpenedStore(s2)),
	)
	if err != nil {
		t.Fatal(err)
	}
	reopened, gotSeq, err := pipe2.Reopen(ctx, records, s2)
	if err != nil {
		t.Fatal(err)
	}
	if gotSeq != seq {
		t.Fatalf("Reopen sequence = %d, want %d", gotSeq, seq)
	}
	if got, want := renderMatches(reopened.Result), renderMatches(res.Result); got != want {
		t.Fatalf("reopened matches diverge: %s", firstDiff(got, want))
	}
	if reopened.Stats.MatcherCalls != 0 || reopened.Stats.Evaluations != 0 {
		t.Fatalf("Reopen invoked the matcher: %d calls, %d evaluations",
			reopened.Stats.MatcherCalls, reopened.Stats.Evaluations)
	}
	if pipe2.Stats().MatcherCalls != 0 {
		t.Fatalf("pipeline counters recorded %d matcher calls during Reopen", pipe2.Stats().MatcherCalls)
	}
	if res.Labeled {
		if reopened.Report == nil || reopened.Report.PRF != res.Report.PRF {
			t.Fatalf("reopened metrics diverge: %+v vs %+v", reopened.Report, res.Report)
		}
	}

	// The reopened state ingests incrementally and agrees with the
	// never-killed stream.
	extra, err := cem.GenerateRecords(cem.HEPTH, 0.05, 99)
	if err != nil {
		t.Fatal(err)
	}
	afterReopen, err := pipe2.Update(ctx, reopened, extra)
	if err != nil {
		t.Fatal(err)
	}
	// The live continuation runs store-less (the original store was
	// closed with its process); only the outputs are compared.
	livePipe, err := cem.NewPipeline(cem.WithMatcher(cem.MatcherMLN), cem.WithScheme(cem.SchemeSMP))
	if err != nil {
		t.Fatal(err)
	}
	afterLive, err := livePipe.Update(ctx, res, extra)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := renderMatches(afterReopen.Result), renderMatches(afterLive.Result); got != want {
		t.Fatalf("post-reopen update diverges from the live stream: %s", firstDiff(got, want))
	}
	if !afterReopen.WarmStarted {
		t.Fatal("post-reopen update did not warm-start (postings blob not honored?)")
	}
}

// TestStoreStateReopenValidation pins Reopen's failure modes: no saved
// snapshot, wrong record stream, wrong matcher.
func TestStoreStateReopenValidation(t *testing.T) {
	ctx := context.Background()
	records := storeRecords(t)

	empty, err := cem.OpenStore("mem")
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := cem.NewPipeline(cem.WithMatcher(cem.MatcherMLN), cem.WithScheme(cem.SchemeSMP))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := pipe.Reopen(ctx, records, empty); !errors.Is(err, match.ErrBlobNotFound) {
		t.Fatalf("Reopen on an empty store: err = %v, want ErrBlobNotFound", err)
	}

	s, err := cem.OpenStore("mem")
	if err != nil {
		t.Fatal(err)
	}
	res, err := pipe.Update(ctx, nil, records)
	if err != nil {
		t.Fatal(err)
	}
	if err := cem.SaveState(s, res, 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := pipe.Reopen(ctx, records[:len(records)-3], s); err == nil {
		t.Fatal("Reopen accepted a shorter record stream than the snapshot spans")
	}
	rulesPipe, err := cem.NewPipeline(cem.WithMatcher(cem.MatcherRules), cem.WithScheme(cem.SchemeSMP))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := rulesPipe.Reopen(ctx, records, s); err == nil {
		t.Fatal("Reopen accepted a snapshot saved by a different matcher")
	}
}

// TestWithStoreLazySharing pins that WithStore opens the named store
// once and shares it across every run of the pipeline.
func TestWithStoreLazySharing(t *testing.T) {
	ctx := context.Background()
	records := storeRecords(t)
	dir := filepath.Join(t.TempDir(), "store")
	pipe, err := cem.NewPipeline(
		cem.WithMatcher(cem.MatcherMLN),
		cem.WithScheme(cem.SchemeSMP),
		cem.WithRunnerOptions(cem.WithStore("disk", cem.WithStoreDir(dir))),
	)
	if err != nil {
		t.Fatal(err)
	}
	res1, err := pipe.Run(ctx, records)
	if err != nil {
		t.Fatal(err)
	}
	// A second run re-clears and re-fills the same store.
	res2, err := pipe.Run(ctx, records)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := renderMatches(res2.Result), renderMatches(res1.Result); got != want {
		t.Fatalf("second run diverged: %s", firstDiff(got, want))
	}
	s, err := cem.OpenStore("disk", cem.WithStoreDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	n, err := s.EvidenceLen()
	if err != nil {
		t.Fatal(err)
	}
	if n != res2.Matches.Len() {
		t.Fatalf("store holds %d keys, run produced %d matches", n, res2.Matches.Len())
	}
	if _, err := cem.OpenStore("bogus"); err == nil {
		t.Fatal("OpenStore accepted an unregistered name")
	}
}
